#include "xquery/parser.h"

#include <cctype>

#include "common/check.h"
#include "xquery/lexer.h"

namespace exrquy {
namespace {

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) {}

  Result<Query> ParseModule() {
    EXRQUY_RETURN_IF_ERROR(lexer_.Advance());
    Query query;
    EXRQUY_RETURN_IF_ERROR(ParseProlog(&query));
    EXRQUY_ASSIGN_OR_RETURN(query.body, ParseExprSeq());
    if (Tok().kind != TokKind::kEof) {
      return Error("unexpected trailing input");
    }
    return query;
  }

  Result<ExprPtr> ParseSingleExpression() {
    EXRQUY_RETURN_IF_ERROR(lexer_.Advance());
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSeq());
    if (Tok().kind != TokKind::kEof) {
      return Error("unexpected trailing input");
    }
    return e;
  }

 private:
  const Token& Tok() const { return lexer_.Cur(); }

  Status Error(std::string message) const {
    message += " (offset ";
    message += std::to_string(Tok().offset);
    message += ", at '";
    message += Tok().text;
    message += "')";
    return InvalidArgument(std::move(message));
  }

  Status Advance() { return lexer_.Advance(); }

  bool IsName(std::string_view kw) const {
    return Tok().kind == TokKind::kName && Tok().text == kw;
  }

  Status Expect(TokKind kind, const char* what) {
    if (Tok().kind != kind) return Error(std::string("expected ") + what);
    return Advance();
  }

  Status ExpectName(std::string_view kw) {
    if (!IsName(kw)) return Error("expected '" + std::string(kw) + "'");
    return Advance();
  }

  // -- Prolog ---------------------------------------------------------------

  Status ParseProlog(Query* query) {
    while (IsName("declare")) {
      size_t rollback = Tok().offset;
      EXRQUY_RETURN_IF_ERROR(Advance());
      if (IsName("ordering")) {
        EXRQUY_RETURN_IF_ERROR(Advance());
        if (IsName("ordered")) {
          query->default_ordering = OrderingMode::kOrdered;
        } else if (IsName("unordered")) {
          query->default_ordering = OrderingMode::kUnordered;
        } else {
          return Error("expected 'ordered' or 'unordered'");
        }
        query->has_ordering_decl = true;
        EXRQUY_RETURN_IF_ERROR(Advance());
        EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
      } else if (IsName("function")) {
        EXRQUY_RETURN_IF_ERROR(Advance());
        FunctionDecl decl;
        if (Tok().kind != TokKind::kName) return Error("expected name");
        decl.name = Tok().text;
        EXRQUY_RETURN_IF_ERROR(Advance());
        EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
        while (Tok().kind == TokKind::kVar) {
          decl.params.push_back(Tok().text);
          EXRQUY_RETURN_IF_ERROR(Advance());
          // Optional 'as' type annotation: skip tokens up to ',' or ')'.
          if (IsName("as")) {
            EXRQUY_RETURN_IF_ERROR(Advance());
            while (Tok().kind != TokKind::kComma &&
                   Tok().kind != TokKind::kRParen &&
                   Tok().kind != TokKind::kEof) {
              EXRQUY_RETURN_IF_ERROR(Advance());
            }
          }
          if (Tok().kind == TokKind::kComma) {
            EXRQUY_RETURN_IF_ERROR(Advance());
          } else {
            break;
          }
        }
        EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        if (IsName("as")) {  // return type: skip up to '{'
          while (Tok().kind != TokKind::kLBrace &&
                 Tok().kind != TokKind::kEof) {
            EXRQUY_RETURN_IF_ERROR(Advance());
          }
        }
        EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{'"));
        EXRQUY_ASSIGN_OR_RETURN(decl.body, ParseExprSeq());
        EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
        EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
        query->functions.push_back(std::move(decl));
      } else {
        // Not a prolog declaration we know: 'declare' may actually be an
        // element name in the body. Rewind and stop prolog parsing.
        lexer_.ResetTo(rollback);
        EXRQUY_RETURN_IF_ERROR(Advance());
        break;
      }
    }
    return Status::Ok();
  }

  // -- Expressions ------------------------------------------------------

  // Expr ::= ExprSingle ("," ExprSingle)*
  Result<ExprPtr> ParseExprSeq() {
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
    if (Tok().kind != TokKind::kComma) return first;
    ExprPtr seq = MakeExpr(ExprKind::kSequence);
    seq->children.push_back(std::move(first));
    while (Tok().kind == TokKind::kComma) {
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_ASSIGN_OR_RETURN(ExprPtr next, ParseExprSingle());
      seq->children.push_back(std::move(next));
    }
    return seq;
  }

  // Every unbounded recursion cycle in this grammar passes through
  // ParseExprSingle (parenthesized expressions, predicates, function
  // arguments, FLWOR/quantifier/if bodies) or ParseCtorAt (nested direct
  // constructors); the +/- unary chain is iterative. Bounding these two
  // therefore bounds the C++ call stack: adversarially nested input
  // returns an InvalidArgument Status instead of overflowing it.
  static constexpr size_t kMaxDepth = 256;

  Result<ExprPtr> ParseExprSingle() {
    if (depth_ >= kMaxDepth) {
      return Error("expression nesting deeper than " +
                   std::to_string(kMaxDepth));
    }
    ++depth_;
    Result<ExprPtr> r = ParseExprSingleInner();
    --depth_;
    return r;
  }

  Result<ExprPtr> ParseExprSingleInner() {
    if (IsName("for") || IsName("let")) return ParseFlwor();
    if (IsName("some") || IsName("every")) return ParseQuantified();
    if (IsName("if")) return ParseIf();
    return ParseOrExpr();
  }

  Result<ExprPtr> ParseFlwor() {
    ExprPtr flwor = MakeExpr(ExprKind::kFlwor);
    while (IsName("for") || IsName("let")) {
      bool is_for = IsName("for");
      EXRQUY_RETURN_IF_ERROR(Advance());
      for (;;) {
        FlworClause clause;
        clause.kind =
            is_for ? FlworClause::Kind::kFor : FlworClause::Kind::kLet;
        if (Tok().kind != TokKind::kVar) return Error("expected variable");
        clause.var = Tok().text;
        EXRQUY_RETURN_IF_ERROR(Advance());
        if (is_for && IsName("at")) {
          EXRQUY_RETURN_IF_ERROR(Advance());
          if (Tok().kind != TokKind::kVar) {
            return Error("expected positional variable");
          }
          clause.pos_var = Tok().text;
          EXRQUY_RETURN_IF_ERROR(Advance());
        }
        if (is_for) {
          EXRQUY_RETURN_IF_ERROR(ExpectName("in"));
        } else {
          EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kAssign, "':='"));
        }
        EXRQUY_ASSIGN_OR_RETURN(clause.expr, ParseExprSingle());
        flwor->clauses.push_back(std::move(clause));
        // A comma continues the binding list only when followed by '$';
        // otherwise it belongs to an enclosing sequence expression.
        if (Tok().kind == TokKind::kComma && PeekIsVar()) {
          EXRQUY_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
    }
    if (IsName("where")) {
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_ASSIGN_OR_RETURN(flwor->where, ParseExprSingle());
    }
    if (IsName("stable")) EXRQUY_RETURN_IF_ERROR(Advance());
    if (IsName("order")) {
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_RETURN_IF_ERROR(ExpectName("by"));
      for (;;) {
        OrderSpec spec;
        EXRQUY_ASSIGN_OR_RETURN(spec.key, ParseExprSingle());
        if (IsName("ascending")) {
          EXRQUY_RETURN_IF_ERROR(Advance());
        } else if (IsName("descending")) {
          spec.descending = true;
          EXRQUY_RETURN_IF_ERROR(Advance());
        }
        if (IsName("empty")) {  // 'empty greatest/least' — accepted, ignored
          EXRQUY_RETURN_IF_ERROR(Advance());
          EXRQUY_RETURN_IF_ERROR(Advance());
        }
        flwor->order_by.push_back(std::move(spec));
        if (Tok().kind == TokKind::kComma) {
          EXRQUY_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
    }
    EXRQUY_RETURN_IF_ERROR(ExpectName("return"));
    EXRQUY_ASSIGN_OR_RETURN(flwor->ret, ParseExprSingle());
    return flwor;
  }

  Result<ExprPtr> ParseQuantified() {
    bool is_every = IsName("every");
    EXRQUY_RETURN_IF_ERROR(Advance());
    // Multiple binders desugar to nested quantifiers.
    std::vector<std::pair<std::string, ExprPtr>> binders;
    for (;;) {
      if (Tok().kind != TokKind::kVar) return Error("expected variable");
      std::string var = Tok().text;
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_RETURN_IF_ERROR(ExpectName("in"));
      EXRQUY_ASSIGN_OR_RETURN(ExprPtr domain, ParseExprSingle());
      binders.emplace_back(std::move(var), std::move(domain));
      if (Tok().kind == TokKind::kComma && PeekIsVar()) {
        EXRQUY_RETURN_IF_ERROR(Advance());
        continue;
      }
      break;
    }
    EXRQUY_RETURN_IF_ERROR(ExpectName("satisfies"));
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr body, ParseExprSingle());
    for (auto it = binders.rbegin(); it != binders.rend(); ++it) {
      ExprPtr q = MakeExpr(ExprKind::kQuantified);
      // `every` is recorded via op kAnd; `some` via kOr (the normalizer
      // rewrites every -> not(some(not)) per Section 2.2).
      q->op = is_every ? BinOp::kAnd : BinOp::kOr;
      q->string_value = it->first;
      q->children.push_back(std::move(it->second));
      q->children.push_back(std::move(body));
      body = std::move(q);
    }
    return body;
  }

  Result<ExprPtr> ParseIf() {
    EXRQUY_RETURN_IF_ERROR(Advance());
    EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr cond, ParseExprSeq());
    EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    EXRQUY_RETURN_IF_ERROR(ExpectName("then"));
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExprSingle());
    EXRQUY_RETURN_IF_ERROR(ExpectName("else"));
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExprSingle());
    ExprPtr e = MakeExpr(ExprKind::kIf);
    e->children.push_back(std::move(cond));
    e->children.push_back(std::move(then_e));
    e->children.push_back(std::move(else_e));
    return e;
  }

  Result<ExprPtr> ParseOrExpr() {
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
    while (IsName("or")) {
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
      ExprPtr e = MakeExpr(ExprKind::kLogical);
      e->op = BinOp::kOr;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAndExpr() {
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparisonExpr());
    while (IsName("and")) {
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparisonExpr());
      ExprPtr e = MakeExpr(ExprKind::kLogical);
      e->op = BinOp::kAnd;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparisonExpr() {
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRangeExpr());
    ExprKind kind;
    BinOp op;
    switch (Tok().kind) {
      case TokKind::kEq:
        kind = ExprKind::kGeneralComp;
        op = BinOp::kEq;
        break;
      case TokKind::kNe:
        kind = ExprKind::kGeneralComp;
        op = BinOp::kNe;
        break;
      case TokKind::kLt:
        kind = ExprKind::kGeneralComp;
        op = BinOp::kLt;
        break;
      case TokKind::kLe:
        kind = ExprKind::kGeneralComp;
        op = BinOp::kLe;
        break;
      case TokKind::kGt:
        kind = ExprKind::kGeneralComp;
        op = BinOp::kGt;
        break;
      case TokKind::kGe:
        kind = ExprKind::kGeneralComp;
        op = BinOp::kGe;
        break;
      case TokKind::kLtLt:
        kind = ExprKind::kNodeComp;
        op = BinOp::kBefore;
        break;
      case TokKind::kGtGt:
        kind = ExprKind::kNodeComp;
        op = BinOp::kAfter;
        break;
      case TokKind::kName:
        if (Tok().text == "eq") {
          kind = ExprKind::kValueComp;
          op = BinOp::kEq;
        } else if (Tok().text == "ne") {
          kind = ExprKind::kValueComp;
          op = BinOp::kNe;
        } else if (Tok().text == "lt") {
          kind = ExprKind::kValueComp;
          op = BinOp::kLt;
        } else if (Tok().text == "le") {
          kind = ExprKind::kValueComp;
          op = BinOp::kLe;
        } else if (Tok().text == "gt") {
          kind = ExprKind::kValueComp;
          op = BinOp::kGt;
        } else if (Tok().text == "ge") {
          kind = ExprKind::kValueComp;
          op = BinOp::kGe;
        } else if (Tok().text == "is") {
          kind = ExprKind::kNodeComp;
          op = BinOp::kIs;
        } else {
          return lhs;
        }
        break;
      default:
        return lhs;
    }
    EXRQUY_RETURN_IF_ERROR(Advance());
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRangeExpr());
    ExprPtr e = MakeExpr(kind);
    e->op = op;
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  Result<ExprPtr> ParseRangeExpr() {
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditiveExpr());
    if (!IsName("to")) return lhs;
    EXRQUY_RETURN_IF_ERROR(Advance());
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditiveExpr());
    ExprPtr e = MakeExpr(ExprKind::kRange);
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  Result<ExprPtr> ParseAdditiveExpr() {
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicativeExpr());
    for (;;) {
      BinOp op;
      if (Tok().kind == TokKind::kPlus) {
        op = BinOp::kAdd;
      } else if (Tok().kind == TokKind::kMinus) {
        op = BinOp::kSub;
      } else {
        return lhs;
      }
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicativeExpr());
      ExprPtr e = MakeExpr(ExprKind::kArith);
      e->op = op;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
  }

  Result<ExprPtr> ParseMultiplicativeExpr() {
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnionExpr());
    for (;;) {
      BinOp op;
      if (Tok().kind == TokKind::kStar) {
        op = BinOp::kMul;
      } else if (IsName("div")) {
        op = BinOp::kDiv;
      } else if (IsName("idiv")) {
        op = BinOp::kIDiv;
      } else if (IsName("mod")) {
        op = BinOp::kMod;
      } else {
        return lhs;
      }
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnionExpr());
      ExprPtr e = MakeExpr(ExprKind::kArith);
      e->op = op;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
  }

  Result<ExprPtr> ParseUnionExpr() {
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseIntersectExceptExpr());
    while (Tok().kind == TokKind::kPipe || IsName("union")) {
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseIntersectExceptExpr());
      ExprPtr e = MakeExpr(ExprKind::kSetOp);
      e->op = BinOp::kUnion;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseIntersectExceptExpr() {
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnaryExpr());
    while (IsName("intersect") || IsName("except")) {
      BinOp op = IsName("intersect") ? BinOp::kIntersect : BinOp::kExcept;
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnaryExpr());
      ExprPtr e = MakeExpr(ExprKind::kSetOp);
      e->op = op;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnaryExpr() {
    bool negate = false;
    while (Tok().kind == TokKind::kMinus || Tok().kind == TokKind::kPlus) {
      if (Tok().kind == TokKind::kMinus) negate = !negate;
      EXRQUY_RETURN_IF_ERROR(Advance());
    }
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr e, ParsePathExpr());
    if (negate) {
      ExprPtr neg = MakeExpr(ExprKind::kArith);
      neg->op = BinOp::kNeg;
      neg->children.push_back(std::move(e));
      return neg;
    }
    return e;
  }

  // -- Paths --------------------------------------------------------------

  Result<ExprPtr> ParsePathExpr() {
    if (Tok().kind == TokKind::kSlash || Tok().kind == TokKind::kSlashSlash) {
      return Error(
          "absolute paths ('/e') are not supported; start from fn:doc()");
    }
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr e, ParseStepExpr(nullptr));
    while (Tok().kind == TokKind::kSlash ||
           Tok().kind == TokKind::kSlashSlash) {
      bool abbrev = Tok().kind == TokKind::kSlashSlash;
      EXRQUY_RETURN_IF_ERROR(Advance());
      if (abbrev) {
        // e1//e2 is sugar for e1/descendant-or-self::node()/e2 (fn. 1 of
        // the paper).
        ExprPtr dos = MakeExpr(ExprKind::kPathStep);
        dos->axis = Axis::kDescendantOrSelf;
        dos->test_kind = NodeTest::Kind::kAnyKind;
        dos->children.push_back(std::move(e));
        e = std::move(dos);
      }
      EXRQUY_ASSIGN_OR_RETURN(e, ParseStepExpr(std::move(e)));
    }
    return e;
  }

  // Parses one step. `input` is the expression the step applies to, or
  // nullptr at the start of a relative path (where an axis step applies
  // to the context item '.').
  Result<ExprPtr> ParseStepExpr(ExprPtr input) {
    ExprPtr step;

    auto make_axis_step = [&](Axis axis) {
      step = MakeExpr(ExprKind::kPathStep);
      step->axis = axis;
      if (input) {
        step->children.push_back(std::move(input));
      } else {
        step->children.push_back(MakeExpr(ExprKind::kContextItem));
      }
    };

    if (Tok().kind == TokKind::kAt) {
      EXRQUY_RETURN_IF_ERROR(Advance());
      make_axis_step(Axis::kAttribute);
      EXRQUY_RETURN_IF_ERROR(ParseNodeTest(step.get()));
    } else if (Tok().kind == TokKind::kDotDot) {
      EXRQUY_RETURN_IF_ERROR(Advance());
      make_axis_step(Axis::kParent);
      step->test_kind = NodeTest::Kind::kAnyKind;
    } else if (Tok().kind == TokKind::kStar) {
      EXRQUY_RETURN_IF_ERROR(Advance());
      make_axis_step(Axis::kChild);
      step->test_kind = NodeTest::Kind::kWildcard;
    } else if (Tok().kind == TokKind::kName) {
      // Either axis::test, a kind test, a function call, or a name test.
      Axis axis;
      if (LooksLikeAxis(&axis)) {
        EXRQUY_RETURN_IF_ERROR(Advance());  // axis name
        EXRQUY_RETURN_IF_ERROR(Advance());  // '::'
        make_axis_step(axis);
        EXRQUY_RETURN_IF_ERROR(ParseNodeTest(step.get()));
      } else if ((IsKindTestName(Tok().text) || Tok().text == "text") &&
                 PeekIsLParen()) {
        // node()/text()/comment() kind tests on the child axis. ('text'
        // followed by '{' is the text constructor, handled as a primary.)
        make_axis_step(Axis::kChild);
        EXRQUY_RETURN_IF_ERROR(ParseNodeTest(step.get()));
      } else if (PeekIsLParen()) {
        // Function call (or keyword-introduced primary handled below).
        EXRQUY_ASSIGN_OR_RETURN(ExprPtr prim, ParsePrimary());
        step = WrapFilterStep(std::move(input), std::move(prim));
      } else if ((IsName("ordered") || IsName("unordered") ||
                  IsName("text")) &&
                 PeekIsLBrace()) {
        // ordered { } / unordered { } / text { } constructors; a bare
        // 'text' (etc.) name is an ordinary element name test.
        EXRQUY_ASSIGN_OR_RETURN(ExprPtr prim, ParsePrimary());
        step = WrapFilterStep(std::move(input), std::move(prim));
      } else {
        make_axis_step(Axis::kChild);
        EXRQUY_RETURN_IF_ERROR(ParseNodeTest(step.get()));
      }
    } else {
      EXRQUY_ASSIGN_OR_RETURN(ExprPtr prim, ParsePrimary());
      step = WrapFilterStep(std::move(input), std::move(prim));
    }

    // Predicates.
    while (Tok().kind == TokKind::kLBracket) {
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_ASSIGN_OR_RETURN(ExprPtr pred, ParseExprSeq());
      EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
      ExprPtr e = MakeExpr(ExprKind::kPredicate);
      e->children.push_back(std::move(step));
      e->children.push_back(std::move(pred));
      step = std::move(e);
    }
    return step;
  }

  // e1/(expr): a non-axis step evaluates `expr` once per context node of
  // e1 (context item bound); without an input it is just the primary.
  static ExprPtr WrapFilterStep(ExprPtr input, ExprPtr prim) {
    if (input == nullptr) return prim;
    ExprPtr e = MakeExpr(ExprKind::kPathFilter);
    e->children.push_back(std::move(input));
    e->children.push_back(std::move(prim));
    return e;
  }

  bool PeekIsLParen() {
    // One-character lookahead past the current name token: skip spaces.
    std::string_view text = lexer_.text();
    size_t p = lexer_.pos();
    while (p < text.size() &&
           std::isspace(static_cast<unsigned char>(text[p]))) {
      ++p;
    }
    return p < text.size() && text[p] == '(';
  }

  bool LooksLikeAxis(Axis* axis) {
    static constexpr struct {
      const char* name;
      Axis axis;
    } kAxes[] = {
        {"child", Axis::kChild},
        {"descendant", Axis::kDescendant},
        {"descendant-or-self", Axis::kDescendantOrSelf},
        {"self", Axis::kSelf},
        {"attribute", Axis::kAttribute},
        {"parent", Axis::kParent},
        {"ancestor", Axis::kAncestor},
        {"ancestor-or-self", Axis::kAncestorOrSelf},
        {"following-sibling", Axis::kFollowingSibling},
        {"preceding-sibling", Axis::kPrecedingSibling},
        {"following", Axis::kFollowing},
        {"preceding", Axis::kPreceding},
    };
    if (Tok().kind != TokKind::kName) return false;
    for (const auto& a : kAxes) {
      if (Tok().text == a.name) {
        // Must be followed by '::'.
        std::string_view text = lexer_.text();
        size_t p = lexer_.pos();
        if (p + 1 < text.size() && text[p] == ':' && text[p + 1] == ':') {
          *axis = a.axis;
          return true;
        }
        return false;
      }
    }
    return false;
  }

  static bool IsKindTestName(const std::string& name) {
    return name == "node" || name == "comment";
    // 'text' is handled separately: 'text {' is a constructor, 'text()' a
    // kind test.
  }

  Status ParseNodeTest(Expr* step) {
    if (Tok().kind == TokKind::kStar) {
      step->test_kind = NodeTest::Kind::kWildcard;
      return Advance();
    }
    if (Tok().kind != TokKind::kName) return Error("expected node test");
    std::string name = Tok().text;
    if ((name == "node" || name == "text" || name == "comment") &&
        PeekIsLParen()) {
      EXRQUY_RETURN_IF_ERROR(Advance());
      EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
      EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      step->test_kind = name == "node"   ? NodeTest::Kind::kAnyKind
                        : name == "text" ? NodeTest::Kind::kText
                                         : NodeTest::Kind::kComment;
      return Status::Ok();
    }
    step->test_kind = NodeTest::Kind::kName;
    step->test_name = name;
    return Advance();
  }

  // -- Primaries ------------------------------------------------------------

  Result<ExprPtr> ParsePrimary() {
    switch (Tok().kind) {
      case TokKind::kInt: {
        ExprPtr e = MakeExpr(ExprKind::kIntLit);
        e->int_value = Tok().int_value;
        EXRQUY_RETURN_IF_ERROR(Advance());
        return e;
      }
      case TokKind::kDouble: {
        ExprPtr e = MakeExpr(ExprKind::kDoubleLit);
        e->double_value = Tok().double_value;
        EXRQUY_RETURN_IF_ERROR(Advance());
        return e;
      }
      case TokKind::kString: {
        ExprPtr e = MakeExpr(ExprKind::kStringLit);
        e->string_value = Tok().text;
        EXRQUY_RETURN_IF_ERROR(Advance());
        return e;
      }
      case TokKind::kVar: {
        ExprPtr e = MakeExpr(ExprKind::kVarRef);
        e->string_value = Tok().text;
        EXRQUY_RETURN_IF_ERROR(Advance());
        return e;
      }
      case TokKind::kDot: {
        EXRQUY_RETURN_IF_ERROR(Advance());
        return MakeExpr(ExprKind::kContextItem);
      }
      case TokKind::kLParen: {
        EXRQUY_RETURN_IF_ERROR(Advance());
        if (Tok().kind == TokKind::kRParen) {
          EXRQUY_RETURN_IF_ERROR(Advance());
          return MakeExpr(ExprKind::kEmptySeq);
        }
        EXRQUY_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSeq());
        EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        return e;
      }
      case TokKind::kLt:
        return ParseElementCtor();
      case TokKind::kName: {
        if ((IsName("ordered") || IsName("unordered")) && PeekIsLBrace()) {
          OrderingMode mode = IsName("ordered") ? OrderingMode::kOrdered
                                                : OrderingMode::kUnordered;
          EXRQUY_RETURN_IF_ERROR(Advance());
          EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{'"));
          EXRQUY_ASSIGN_OR_RETURN(ExprPtr body, ParseExprSeq());
          EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
          ExprPtr e = MakeExpr(ExprKind::kOrderedExpr);
          e->mode = mode;
          e->children.push_back(std::move(body));
          return e;
        }
        if (IsName("text") && PeekIsLBrace()) {
          EXRQUY_RETURN_IF_ERROR(Advance());
          EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{'"));
          EXRQUY_ASSIGN_OR_RETURN(ExprPtr body, ParseExprSeq());
          EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
          ExprPtr e = MakeExpr(ExprKind::kTextCtor);
          e->children.push_back(std::move(body));
          return e;
        }
        // Function call.
        std::string name = Tok().text;
        EXRQUY_RETURN_IF_ERROR(Advance());
        if (Tok().kind != TokKind::kLParen) {
          return Error("expected '(' after function name '" + name + "'");
        }
        EXRQUY_RETURN_IF_ERROR(Advance());
        ExprPtr call = MakeExpr(ExprKind::kFunctionCall);
        // Canonicalize the fn: prefix away.
        if (name.rfind("fn:", 0) == 0) name = name.substr(3);
        call->string_value = std::move(name);
        if (Tok().kind != TokKind::kRParen) {
          for (;;) {
            EXRQUY_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprSingle());
            call->children.push_back(std::move(arg));
            if (Tok().kind == TokKind::kComma) {
              EXRQUY_RETURN_IF_ERROR(Advance());
              continue;
            }
            break;
          }
        }
        EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        return call;
      }
      default:
        return Error("expected an expression");
    }
  }

  bool PeekIsVar() {
    std::string_view text = lexer_.text();
    size_t p = lexer_.pos();
    while (p < text.size() &&
           std::isspace(static_cast<unsigned char>(text[p]))) {
      ++p;
    }
    return p < text.size() && text[p] == '$';
  }

  bool PeekIsLBrace() {
    std::string_view text = lexer_.text();
    size_t p = lexer_.pos();
    while (p < text.size() &&
           std::isspace(static_cast<unsigned char>(text[p]))) {
      ++p;
    }
    return p < text.size() && text[p] == '{';
  }

  // -- Direct element constructors (character-level parsing) ---------------

  Result<ExprPtr> ParseElementCtor() {
    EXRQUY_DCHECK(Tok().kind == TokKind::kLt);
    size_t start = Tok().offset;  // points at '<'
    EXRQUY_ASSIGN_OR_RETURN(CtorResult r, ParseCtorAt(start));
    lexer_.ResetTo(r.end);
    EXRQUY_RETURN_IF_ERROR(Advance());
    return std::move(r.expr);
  }

  struct CtorResult {
    ExprPtr expr;
    size_t end;  // offset just past the constructor
  };

  Status CtorError(size_t at, std::string message) const {
    message += " (offset ";
    message += std::to_string(at);
    message += ")";
    return InvalidArgument(std::move(message));
  }

  // Parses '<name attrs> content </name>' starting at offset p ('<').
  Result<CtorResult> ParseCtorAt(size_t p) {
    if (depth_ >= kMaxDepth) {
      return CtorError(p, "constructor nesting deeper than " +
                              std::to_string(kMaxDepth));
    }
    ++depth_;
    Result<CtorResult> r = ParseCtorAtInner(p);
    --depth_;
    return r;
  }

  Result<CtorResult> ParseCtorAtInner(size_t p) {
    std::string_view text = lexer_.text();
    auto at_end = [&] { return p >= text.size(); };
    auto skip_ws = [&] {
      while (!at_end() && std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
    };
    auto scan_name = [&]() -> std::string {
      size_t s = p;
      while (!at_end() && (IsNcNameChar(text[p]) ||
                           (text[p] == ':' && p + 1 < text.size() &&
                            IsNcNameStart(text[p + 1])))) {
        ++p;
      }
      return std::string(text.substr(s, p - s));
    };

    EXRQUY_CHECK(text[p] == '<');
    ++p;
    if (at_end() || !IsNcNameStart(text[p])) {
      return CtorError(p, "expected element name");
    }
    ExprPtr elem = MakeExpr(ExprKind::kElementCtor);
    elem->string_value = scan_name();

    // Attributes.
    for (;;) {
      skip_ws();
      if (at_end()) return CtorError(p, "unterminated start tag");
      if (text[p] == '>' || (text[p] == '/' && p + 1 < text.size() &&
                             text[p + 1] == '>')) {
        break;
      }
      if (!IsNcNameStart(text[p])) {
        return CtorError(p, "expected attribute name");
      }
      ExprPtr attr = MakeExpr(ExprKind::kAttributeCtor);
      attr->string_value = scan_name();
      skip_ws();
      if (at_end() || text[p] != '=') return CtorError(p, "expected '='");
      ++p;
      skip_ws();
      if (at_end() || (text[p] != '"' && text[p] != '\'')) {
        return CtorError(p, "expected quoted attribute value");
      }
      char quote = text[p];
      ++p;
      EXRQUY_ASSIGN_OR_RETURN(
          p, ParseCtorParts(p, quote, /*element_content=*/false,
                            &attr->parts));
      ++p;  // closing quote
      elem->children.push_back(std::move(attr));
    }

    if (text[p] == '/') {
      p += 2;  // '/>'
      return CtorResult{std::move(elem), p};
    }
    ++p;  // '>'

    // Content.
    EXRQUY_ASSIGN_OR_RETURN(
        p, ParseCtorContent(p, elem->string_value, &elem->parts));
    return CtorResult{std::move(elem), p};
  }

  // Parses AVT text (until `quote`). Returns the offset of the closing
  // quote. '{expr}' parts invoke the token-level parser.
  Result<size_t> ParseCtorParts(size_t p, char quote, bool element_content,
                                std::vector<CtorPart>* parts) {
    (void)element_content;
    std::string_view text = lexer_.text();
    std::string pending;
    auto flush = [&] {
      if (!pending.empty()) {
        CtorPart part;
        part.text = DecodeEntities(pending);
        parts->push_back(std::move(part));
        pending.clear();
      }
    };
    for (;;) {
      if (p >= text.size()) {
        return CtorError(p, "unterminated attribute value");
      }
      char c = text[p];
      if (c == quote) {
        flush();
        return p;
      }
      if (c == '{') {
        if (p + 1 < text.size() && text[p + 1] == '{') {
          pending += '{';
          p += 2;
          continue;
        }
        flush();
        EXRQUY_ASSIGN_OR_RETURN(p, ParseEnclosedExpr(p, parts));
        continue;
      }
      if (c == '}') {
        if (p + 1 < text.size() && text[p + 1] == '}') {
          pending += '}';
          p += 2;
          continue;
        }
        return CtorError(p, "unescaped '}' in attribute value");
      }
      pending += c;
      ++p;
    }
  }

  // Parses element content until the matching end tag. Returns the offset
  // just past '</name>'.
  Result<size_t> ParseCtorContent(size_t p, const std::string& name,
                                  std::vector<CtorPart>* parts) {
    std::string_view text = lexer_.text();
    std::string pending;
    auto flush = [&] {
      // Boundary whitespace is stripped (XQuery's default boundary-space
      // policy); interior text is preserved.
      if (!pending.empty() && !IsAllWhitespace(pending)) {
        CtorPart part;
        part.text = DecodeEntities(pending);
        parts->push_back(std::move(part));
      }
      pending.clear();
    };
    for (;;) {
      if (p >= text.size()) {
        return CtorError(p, "unterminated element content");
      }
      char c = text[p];
      if (c == '<') {
        if (p + 1 < text.size() && text[p + 1] == '/') {
          flush();
          p += 2;
          size_t s = p;
          while (p < text.size() &&
                 (IsNcNameChar(text[p]) ||
                  (text[p] == ':' && p + 1 < text.size() &&
                   IsNcNameStart(text[p + 1])))) {
            ++p;
          }
          std::string end_name(text.substr(s, p - s));
          if (end_name != name) {
            return CtorError(s, "mismatched end tag </" + end_name + ">");
          }
          while (p < text.size() &&
                 std::isspace(static_cast<unsigned char>(text[p]))) {
            ++p;
          }
          if (p >= text.size() || text[p] != '>') {
            return CtorError(p, "expected '>'");
          }
          return p + 1;
        }
        if (text.substr(p, 4) == "<!--") {
          size_t end = text.find("-->", p);
          if (end == std::string_view::npos) {
            return CtorError(p, "unterminated comment");
          }
          p = end + 3;
          continue;
        }
        flush();
        EXRQUY_ASSIGN_OR_RETURN(CtorResult nested, ParseCtorAt(p));
        CtorPart part;
        part.expr = std::move(nested.expr);
        parts->push_back(std::move(part));
        p = nested.end;
        continue;
      }
      if (c == '{') {
        if (p + 1 < text.size() && text[p + 1] == '{') {
          pending += '{';
          p += 2;
          continue;
        }
        flush();
        EXRQUY_ASSIGN_OR_RETURN(p, ParseEnclosedExpr(p, parts));
        continue;
      }
      if (c == '}') {
        if (p + 1 < text.size() && text[p + 1] == '}') {
          pending += '}';
          p += 2;
          continue;
        }
        return CtorError(p, "unescaped '}' in element content");
      }
      pending += c;
      ++p;
    }
  }

  // Parses '{ Expr }' starting at offset p ('{') using the token-level
  // parser; appends an expression part; returns the offset past '}'.
  Result<size_t> ParseEnclosedExpr(size_t p, std::vector<CtorPart>* parts) {
    lexer_.ResetTo(p);
    EXRQUY_RETURN_IF_ERROR(Advance());  // '{'
    EXRQUY_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{'"));
    EXRQUY_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSeq());
    if (Tok().kind != TokKind::kRBrace) {
      return Error("expected '}' after enclosed expression");
    }
    size_t end = lexer_.pos();
    CtorPart part;
    part.expr = std::move(e);
    parts->push_back(std::move(part));
    return end;
  }

  Lexer lexer_;
  size_t depth_ = 0;  // ParseExprSingle + ParseCtorAt recursion depth
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  return Parser(text).ParseModule();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  return Parser(text).ParseSingleExpression();
}

}  // namespace exrquy
