file(REMOVE_RECURSE
  "CMakeFiles/test_value_ops.dir/test_value_ops.cc.o"
  "CMakeFiles/test_value_ops.dir/test_value_ops.cc.o.d"
  "test_value_ops"
  "test_value_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
