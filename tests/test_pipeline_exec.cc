// Morsel-driven pipelined execution (opt/morsel_plan.h, engine/eval.h):
// the fused engine must be invisible in every observable except time and
// memory. The suite drives that contract four ways:
//
//   * byte-equality of all twenty XMark queries against the unfused
//     operator-at-a-time engine, across ordering modes, thread counts
//     and morsel sizes — including morsel_rows = 1, where every stage
//     boundary, merge order and refcount transition is exercised at
//     maximum resolution;
//   * the governor fault matrix (fail-alloc / cancel-at-op /
//     deadline-at-chunk) swept exhaustively through fused pipelines with
//     SweepFaultPoints: every single fault point surfaces as the planned
//     code and an unfaulted re-run is byte-identical;
//   * the memory half: fusing must strictly lower the peak live
//     footprint on XMark Q11 below the operator-at-a-time release
//     frontier, because interior stages never materialize;
//   * the plan audit: a hand-corrupted MorselPlan must be refused before
//     the engine runs a single morsel.
//
// Plus the scheduling satellite: a tiny query at 4 threads must not pay
// for the pool (serial-inline threshold + lazy worker spawn).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "api/session.h"
#include "engine/faults.h"
#include "opt/morsel_plan.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

// The unfused engine is the reference: exact serial operator-at-a-time
// evaluation, the semantics every prior PR's goldens pinned down.
QueryOptions Reference() {
  QueryOptions o;
  o.num_threads = 1;
  o.pipelined_execution = false;
  return o;
}

QueryOptions Pipelined(int threads, size_t morsel_rows) {
  QueryOptions o;
  o.num_threads = threads;
  o.pipelined_execution = true;
  o.morsel_rows = morsel_rows;
  return o;
}

class PipelineExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.004;
    ASSERT_TRUE(
        session_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static Session* session_;
};

Session* PipelineExecTest::session_ = nullptr;

// ---------------------------------------------------------------------
// Byte-equality matrix: 20 queries x 2 ordering modes x {1, 2, 4}
// threads x morsel sizes {1, 64, 65536} against the unfused reference.

void RunMatrix(Session* session, OrderingMode mode) {
  const size_t kMorsels[] = {1, 64, 65536};
  const int kThreads[] = {1, 2, 4};
  for (const XMarkQuery& q : XMarkQueries()) {
    QueryOptions ref_opts = Reference();
    ref_opts.default_ordering = mode;
    Result<QueryResult> reference = session->Execute(q.text, ref_opts);
    ASSERT_TRUE(reference.ok())
        << q.name << ": " << reference.status().ToString();
    for (int threads : kThreads) {
      for (size_t morsel : kMorsels) {
        QueryOptions o = Pipelined(threads, morsel);
        o.default_ordering = mode;
        Result<QueryResult> r = session->Execute(q.text, o);
        ASSERT_TRUE(r.ok()) << q.name << " threads=" << threads
                            << " morsel=" << morsel << ": "
                            << r.status().ToString();
        EXPECT_EQ(reference->serialized, r->serialized)
            << q.name << " threads=" << threads << " morsel=" << morsel;
        EXPECT_EQ(reference->items, r->items)
            << q.name << " threads=" << threads << " morsel=" << morsel;
      }
    }
  }
}

TEST_F(PipelineExecTest, XMarkByteIdenticalOrdered) {
  RunMatrix(session_, OrderingMode::kOrdered);
}

TEST_F(PipelineExecTest, XMarkByteIdenticalUnordered) {
  RunMatrix(session_, OrderingMode::kUnordered);
}

TEST_F(PipelineExecTest, PipelinesActuallyFuse) {
  // The matrix above is vacuous if no query ever forms a pipeline; pin
  // that the planner fuses real XMark plans and the profile records it.
  size_t queries_with_pipelines = 0;
  for (const XMarkQuery& q : XMarkQueries()) {
    QueryOptions o = Pipelined(/*threads=*/1, /*morsel_rows=*/64);
    o.profile = true;
    Result<QueryResult> r = session_->Execute(q.text, o);
    ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
    if (r->profile.pipelines().empty()) continue;
    ++queries_with_pipelines;
    for (const Profile::PipelineMetrics& pm : r->profile.pipelines()) {
      EXPECT_GE(pm.stages, 2u) << q.name;
      EXPECT_GE(pm.morsels, 1u) << q.name;
    }
    // Fused stages keep their per-op row counts, tagged with the
    // pipeline they ran in; queue wait is charged to the pipeline as
    // one scheduled unit, never to its stages.
    size_t tagged = 0;
    for (const Profile::OpMetrics& m : r->profile.ops()) {
      if (m.pipeline < 0) continue;
      ++tagged;
      EXPECT_EQ(m.queue_ms, 0.0) << q.name;
    }
    EXPECT_GE(tagged, 2 * r->profile.pipelines().size()) << q.name;
  }
  EXPECT_GE(queries_with_pipelines, 10u)
      << "most XMark plans contain at least one fusable chain";
}

// ---------------------------------------------------------------------
// Fault matrix through fused pipelines. Governor polls sit at every
// (morsel, stage) boundary and allocation charges at every morsel
// materialization, so the sweep walks coordinates that only exist in
// the fused engine. morsel_rows pinned tiny and identical everywhere:
// the counters are a pure function of table sizes, so every point is
// reproducible.

QueryOptions SweepOptions() {
  QueryOptions o = Pipelined(/*threads=*/1, /*morsel_rows=*/7);
  o.chunk_rows = 7;
  return o;
}

void SweepQuery(Session* session, const std::string& name, FaultKind kind) {
  const std::string query = XMarkQueryText(name);
  Result<QueryResult> reference = session->Execute(query, SweepOptions());
  ASSERT_TRUE(reference.ok()) << name << ": "
                              << reference.status().ToString();

  auto attempt = [&](const FaultPlan& plan) -> Status {
    QueryOptions o = SweepOptions();
    o.faults = plan;
    Result<QueryResult> r = session->Execute(query, o);
    return r.ok() ? Status::Ok() : r.status();
  };
  auto check = [&](uint64_t point, const Status& st) {
    std::string context = name + " point " + std::to_string(point);
    EXPECT_EQ(st.code(), FaultKindCode(kind))
        << context << ": " << st.ToString();
    Result<QueryResult> again = session->Execute(query, SweepOptions());
    ASSERT_TRUE(again.ok()) << context << ": " << again.status().ToString();
    EXPECT_EQ(again->serialized, reference->serialized) << context;
    EXPECT_EQ(again->items, reference->items) << context;
  };

  Result<uint64_t> points =
      SweepFaultPoints(kind, /*max_points=*/1000000, attempt, check);
  ASSERT_TRUE(points.ok()) << name << ": " << points.status().ToString();
  EXPECT_GT(*points, 0u) << name;
}

TEST_F(PipelineExecTest, FaultSweepThroughFusedPipelines) {
  // Q1 (path + filter pipelines) and Q8 (join build/probe pipelines)
  // under all three fault kinds.
  for (const char* name : {"Q1", "Q8"}) {
    SweepQuery(session_, name, FaultKind::kFailAlloc);
    SweepQuery(session_, name, FaultKind::kCancelAtOp);
    SweepQuery(session_, name, FaultKind::kDeadlineAtChunk);
  }
}

TEST_F(PipelineExecTest, FaultCountsIndependentOfThreads) {
  // The fault coordinates are engine counters; arming the same point at
  // 1 and 4 threads must surface the same planned failure, and the
  // deterministic serial resolution must make the reported error
  // identical (PR 3 fault matrix, now over morsel boundaries).
  const std::string query = XMarkQueryText("Q8");
  for (uint64_t point : {uint64_t{1}, uint64_t{5}, uint64_t{23}}) {
    QueryOptions serial = SweepOptions();
    serial.faults.cancel_at_op = point;
    QueryOptions parallel = SweepOptions();
    parallel.num_threads = 4;
    parallel.faults.cancel_at_op = point;
    Result<QueryResult> s = session_->Execute(query, serial);
    Result<QueryResult> p = session_->Execute(query, parallel);
    ASSERT_EQ(s.ok(), p.ok()) << "point " << point;
    if (!s.ok()) {
      EXPECT_EQ(s.status().ToString(), p.status().ToString())
          << "point " << point;
    }
  }
}

// ---------------------------------------------------------------------
// Memory: interior stages never materialize, so the fused engine's peak
// must sit strictly below the operator-at-a-time release frontier of
// PR 2 on the join-heavy profile query.

TEST_F(PipelineExecTest, Q11PeakMemoryStrictlyLowerWhenFused) {
  const std::string& q11 = XMarkQueryText("Q11");
  QueryOptions unfused = Reference();
  unfused.profile = true;
  QueryOptions fused = Pipelined(/*threads=*/1, /*morsel_rows=*/64);
  fused.profile = true;

  Result<QueryResult> off = session_->Execute(q11, unfused);
  Result<QueryResult> on = session_->Execute(q11, fused);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  EXPECT_EQ(off->serialized, on->serialized);
  EXPECT_FALSE(on->profile.pipelines().empty());
  EXPECT_LT(on->profile.peak_live_bytes(), off->profile.peak_live_bytes());
}

// ---------------------------------------------------------------------
// Scheduling: tiny pipelines run inline on the readying thread, and the
// pool never spawns a worker it does not need, so a tiny query at 4
// threads costs what it costs at 1.

TEST_F(PipelineExecTest, TinyQueryFourThreadLatencyNearSerial) {
  Session session;
  ASSERT_TRUE(session
                  .LoadDocument("tiny.xml",
                                "<top><a>1</a><a>2</a><a>3</a></top>")
                  .ok());
  const std::string query =
      R"(for $x in doc("tiny.xml")//a return number($x) * 2)";

  auto median_ms = [&](const QueryOptions& o) {
    std::vector<double> samples;
    for (int i = 0; i < 60; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      Result<QueryResult> r = session.Execute(query, o);
      auto t1 = std::chrono::steady_clock::now();
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      samples.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };

  QueryOptions serial = Pipelined(/*threads=*/1, /*morsel_rows=*/0);
  QueryOptions four = Pipelined(/*threads=*/4, /*morsel_rows=*/0);
  // Warm both paths (first-run effects: interning, plan shaping).
  (void)session.Execute(query, serial);
  (void)session.Execute(query, four);
  double serial_ms = median_ms(serial);
  double four_ms = median_ms(four);
  EXPECT_LE(four_ms, serial_ms * 1.2)
      << "tiny query must not pay for the pool: serial " << serial_ms
      << " ms vs 4T " << four_ms << " ms";
}

TEST_F(PipelineExecTest, InlineThresholdNeverObservable) {
  // inline_rows changes scheduling only; force both extremes.
  const std::string& q8 = XMarkQueryText("Q8");
  Result<QueryResult> reference = session_->Execute(q8, Reference());
  ASSERT_TRUE(reference.ok());
  for (size_t inline_rows : {size_t{0}, size_t{1u << 30}}) {
    QueryOptions o = Pipelined(/*threads=*/4, /*morsel_rows=*/64);
    o.inline_rows = inline_rows;
    Result<QueryResult> r = session_->Execute(q8, o);
    ASSERT_TRUE(r.ok()) << "inline_rows=" << inline_rows;
    EXPECT_EQ(reference->serialized, r->serialized)
        << "inline_rows=" << inline_rows;
  }
}

// ---------------------------------------------------------------------
// The audit: the evaluator must refuse a morsel plan it cannot
// independently re-derive, in the plan verifier's diagnostic format.

class AuditTest : public ::testing::Test {
 protected:
  // Plans an XMark-style query and returns its pipelines; the corpus
  // query is chosen to guarantee at least one fused chain.
  void Plan() {
    ASSERT_TRUE(session_.LoadDocument("f.xml",
                                      "<top><g k=\"1\"><n>1</n><n>2</n></g>"
                                      "<g k=\"2\"><n>3</n></g></top>")
                    .ok());
    Result<QueryPlans> plans = session_.Plan(
        R"(for $x in doc("f.xml")//g where count($x/n) > 0 return $x/@k)",
        QueryOptions());
    ASSERT_TRUE(plans.ok()) << plans.status().ToString();
    plans_ = std::move(*plans);
    order_ = plans_.dag->ReachableFrom(plans_.optimized);
    plan_ = PlanPipelines(*plans_.dag, order_, plans_.optimized);
    ASSERT_FALSE(plan_.pipelines.empty())
        << "corpus query must form at least one pipeline";
  }

  Status Audit(const MorselPlan& plan) {
    return AuditMorselPlan(*plans_.dag, order_, plans_.optimized, plan);
  }

  Session session_;
  QueryPlans plans_;
  std::vector<OpId> order_;
  MorselPlan plan_;
};

TEST_F(AuditTest, CleanPlanPasses) {
  Plan();
  EXPECT_TRUE(Audit(plan_).ok());
}

TEST_F(AuditTest, RejectsSingleStagePipeline) {
  Plan();
  MorselPlan corrupt = plan_;
  Pipeline& p = corrupt.pipelines[0];
  while (p.stages.size() > 1) {
    corrupt.pipeline_of.erase(p.stages.back().op);
    p.stages.pop_back();
  }
  Status st = Audit(corrupt);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("morsel plan:"), std::string::npos)
      << st.ToString();
}

TEST_F(AuditTest, RejectsReversedStageOrder) {
  Plan();
  MorselPlan corrupt = plan_;
  std::reverse(corrupt.pipelines[0].stages.begin(),
               corrupt.pipelines[0].stages.end());
  EXPECT_FALSE(Audit(corrupt).ok());
}

TEST_F(AuditTest, RejectsStageMappedToWrongPipeline) {
  Plan();
  MorselPlan corrupt = plan_;
  corrupt.pipeline_of[corrupt.pipelines[0].stages[0].op] =
      static_cast<uint32_t>(corrupt.pipelines.size());  // dangling index
  EXPECT_FALSE(Audit(corrupt).ok());
}

TEST_F(AuditTest, RejectsForeignStage) {
  Plan();
  MorselPlan corrupt = plan_;
  // Claim some op outside the pipeline as an extra interior stage.
  OpId foreign = kNoOp;
  for (OpId id : order_) {
    if (!corrupt.fused(id)) {
      foreign = id;
      break;
    }
  }
  ASSERT_NE(foreign, kNoOp);
  Pipeline& p = corrupt.pipelines[0];
  p.stages.insert(p.stages.begin() + 1, PipelineStage{foreign, 0});
  corrupt.pipeline_of[foreign] = 0;
  EXPECT_FALSE(Audit(corrupt).ok());
}

}  // namespace
}  // namespace exrquy
