file(REMOVE_RECURSE
  "CMakeFiles/xq.dir/xq.cpp.o"
  "CMakeFiles/xq.dir/xq.cpp.o.d"
  "xq"
  "xq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
