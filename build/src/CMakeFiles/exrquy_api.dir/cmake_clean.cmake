file(REMOVE_RECURSE
  "CMakeFiles/exrquy_api.dir/api/session.cc.o"
  "CMakeFiles/exrquy_api.dir/api/session.cc.o.d"
  "libexrquy_api.a"
  "libexrquy_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exrquy_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
