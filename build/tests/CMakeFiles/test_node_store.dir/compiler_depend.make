# Empty compiler generated dependencies file for test_node_store.
# This may be replaced when dependencies are built.
