# Empty compiler generated dependencies file for bench_physical_orders.
# This may be replaced when dependencies are built.
