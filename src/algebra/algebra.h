// The compilation target: the restricted relational algebra of Table 1.
//
//   π   Project          — column projection/renaming, keeps duplicates
//   σ   Select           — rows whose boolean column is true
//   ⋈   EquiJoin         — equi-join on one column pair
//   ×   Cross            — Cartesian product (mostly × with 1-row literals)
//   ∪̇   Union            — disjoint union (append)
//   \   Difference       — anti-join on a key column list
//   ⋉   SemiJoin         — rows of the left whose key appears in the right
//       Distinct         — duplicate elimination over the full row
//   %   RowNum           — grouped, ordered dense row numbering
//       (ROW_NUMBER() OVER (PARTITION BY c ORDER BY b)); a blocking sort
//   #   RowId            — arbitrary unique row numbering; (nearly) free
//   ⊕   Fun              — per-row n-ary function (arith/compare/cast/...)
//       Aggr             — grouped aggregation (count, sum, max, ..., EBV)
//   ⊙   Step             — XPath location step (axis::nodetest)
//       Doc              — document access (fn:doc)
//       Elem/Attr/Text   — node constructors (runtime fragment building)
//       Lit              — literal table
//
// Plans are hash-consed into a Dag so that equal sub-plans are shared —
// Pathfinder-emitted code "contains significant sharing opportunities"
// (Section 3). Node constructors are exempt from sharing because each
// syntactic constructor creates distinct node identities.
#ifndef EXRQUY_ALGEBRA_ALGEBRA_H_
#define EXRQUY_ALGEBRA_ALGEBRA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/symbols.h"
#include "common/value.h"
#include "xml/step.h"

namespace exrquy {

using OpId = uint32_t;
inline constexpr OpId kNoOp = ~OpId{0};
inline constexpr ColId kNoCol = 0;  // the empty-string symbol

enum class OpKind : uint8_t {
  kLit,
  kProject,
  kSelect,
  kEquiJoin,
  kThetaJoin,  // join on an arbitrary value comparison (col θ col2)
  kCross,
  kUnion,
  kDifference,
  kSemiJoin,
  kDistinct,
  kRowNum,
  kRowId,
  kFun,
  kAggr,
  kStep,
  kDoc,
  kElem,
  kAttr,
  kTextNode,
  kRange,      // integer range expansion (e1 to e2)
  kCardCheck,  // per-iteration cardinality assertion (fn:exactly-one, ...)
};

const char* OpKindName(OpKind kind);

enum class FunKind : uint8_t {
  // Arithmetic over numbers (untyped casts to double).
  kAdd,
  kSub,
  kMul,
  kDiv,
  kIDiv,
  kMod,
  kNeg,
  // Value comparisons (typed; untyped compares as string against string,
  // as double against numbers — general-comparison casting is applied by
  // the compiler via kCastGeneral before these).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // Node order / identity.
  kNodeBefore,
  kNodeAfter,
  kNodeIs,
  // Boolean connectives.
  kAnd,
  kOr,
  kNot,
  // Atomization and casts.
  kAtomize,     // node -> untypedAtomic(string-value); atomics unchanged
  kToDouble,    // fn:number semantics (errors on non-numeric strings)
  kToString,    // xs:string cast of one atomic/node
  // String functions.
  kContains,
  kConcat,
  kStringLength,
  kStartsWith,
  kEndsWith,
  kUpperCase,
  kLowerCase,
  kNormalizeSpace,
  kSubstring2,  // substring(s, start)
  kSubstring3,  // substring(s, start, length)
  // Numeric functions.
  kAbs,
  kFloor,
  kCeiling,
  kRound,
  // Node accessors.
  kNodeName,  // fn:name / fn:local-name (no namespace prefixes here)
};

const char* FunKindName(FunKind kind);

enum class AggrKind : uint8_t {
  kCount,
  kSum,
  kMax,
  kMin,
  kAvg,
  kEbv,       // effective boolean value of the group's item sequence
  kStrJoin,   // space-separated string join (attribute value construction)
};

const char* AggrKindName(AggrKind kind);

// A literal table: fixed schema and constant rows.
struct LitTable {
  std::vector<ColId> cols;
  std::vector<std::vector<Value>> rows;  // each row has cols.size() values

  bool operator==(const LitTable& other) const = default;
};

struct SortKey {
  ColId col = kNoCol;
  bool descending = false;

  bool operator==(const SortKey& other) const = default;
};

// One algebra operator. A deliberately "fat" plain struct: only the
// fields relevant to `kind` are meaningful (see the builder functions on
// Dag for which those are).
struct Op {
  OpKind kind = OpKind::kLit;
  std::vector<OpId> children;

  // kProject: (new, old) pairs.
  std::vector<std::pair<ColId, ColId>> proj;
  // kSelect: col. kRowNum/kRowId: result col. kFun/kAggr: result col.
  ColId col = kNoCol;
  // kEquiJoin/kThetaJoin: left col / right col (col / col2). kAggr:
  // argument (col2).
  ColId col2 = kNoCol;
  // kEquiJoin only: `value_join` marks a join emitted by the join-
  // recognition rewrite whose key columns carry *item values*, never
  // iteration/order scaffolding (iter, pos, % results). The plan verifier
  // audits the claim ([join-isolation-claim]); kThetaJoin carries the
  // same obligation implicitly. Part of operator identity so a marked
  // join never hash-cons-merges with an unmarked one.
  bool value_join = false;
  // kRowNum: sort criteria. (Empty criteria = arbitrary order, which makes
  // the operator equivalent to # — see Section 7 of the paper.)
  std::vector<SortKey> order;
  // kRowNum / kAggr: partition column (kNoCol = whole table is one group).
  ColId part = kNoCol;
  // kDifference / kSemiJoin: key columns.
  std::vector<ColId> keys;
  // kRowId: the ids are proven row positions (1..n in physical row
  // order), not merely arbitrary unique numbers. Set when an order-
  // dependency rewrite degraded a % whose requested order the input
  // already realizes — downstream analyses may rely on the column being
  // physically ascending, so it is NOT an arbitrary-order column.
  bool positional = false;
  // kCardCheck: per-iteration cardinality bounds.
  int64_t min_card = 0;
  int64_t max_card = 0;
  // kFun: function and argument columns. kThetaJoin: the comparison
  // (kEq..kGe) applied as `col θ col2`.
  FunKind fun = FunKind::kAdd;
  std::vector<ColId> args;
  // kAggr:
  AggrKind aggr = AggrKind::kCount;
  // kStep:
  Axis axis = Axis::kChild;
  NodeTest test;
  // kDoc: document name. kElem/kAttr: constructed node name.
  StrId name = StrPool::kEmpty;
  // kElem/kAttr/kTextNode: unique id preventing hash-cons sharing of
  // distinct syntactic constructors (node identity!).
  uint32_t constructor_id = 0;
  // kLit:
  LitTable lit;

  // Provenance label for the Table 2-style profile (which source
  // sub-expression this operator implements). Not part of operator
  // identity.
  std::string prov;

  // Output schema (computed on insertion).
  std::vector<ColId> schema;

  bool HasCol(ColId c) const;
};

// A hash-consed DAG of algebra operators. OpIds are dense and stable;
// children always have smaller ids than parents (plans are built bottom
// up), which gives a free topological order.
class Dag {
 public:
  Dag() = default;
  Dag(const Dag&) = delete;
  Dag& operator=(const Dag&) = delete;

  const Op& op(OpId id) const { return ops_[id]; }
  size_t size() const { return ops_.size(); }

  // Generic insertion with hash-consing; validates and computes schema.
  OpId Add(Op op);

  // Raw insertion without validation, schema computation, or
  // hash-consing: the stored schema is taken as given. Exists so tests
  // and fuzzers can build deliberately malformed plans for the verifier
  // (opt/verify.h); never used by the compiler or the rewrites.
  OpId AddUnchecked(Op op, std::vector<ColId> schema);

  // -- Builders ------------------------------------------------------------
  OpId Lit(LitTable table);
  // Empty table with the given schema.
  OpId Empty(std::vector<ColId> cols);
  OpId Project(OpId child, std::vector<std::pair<ColId, ColId>> proj);
  OpId Select(OpId child, ColId col);
  OpId EquiJoin(OpId left, OpId right, ColId left_col, ColId right_col);
  // EquiJoin carrying the verifier-audited value-join mark (see
  // Op::value_join).
  OpId ValueJoin(OpId left, OpId right, ColId left_col, ColId right_col);
  // Join on `left.left_col cmp right.right_col` for a value comparison
  // cmp in kEq..kGe; output schema is the concatenation, rows emitted in
  // deterministic left-major order.
  OpId ThetaJoin(OpId left, OpId right, ColId left_col, FunKind cmp,
                 ColId right_col);
  OpId Cross(OpId left, OpId right);
  // Convenience: × with a one-row literal table [col = value] (the idiom
  // the paper writes as q × (pos 1), nearly free on table descriptors).
  OpId AttachConst(OpId child, ColId col, Value value);
  OpId Union(OpId left, OpId right);
  OpId Difference(OpId left, OpId right, std::vector<ColId> keys);
  OpId SemiJoin(OpId left, OpId right, std::vector<ColId> keys);
  OpId Distinct(OpId child);
  OpId RowNum(OpId child, ColId result, std::vector<SortKey> order,
              ColId part);
  // `positional` marks the ids as proven row positions (see Op::positional).
  OpId RowId(OpId child, ColId result, bool positional = false);
  OpId Fun(OpId child, FunKind fun, ColId result, std::vector<ColId> args);
  // `order_col` (optional) names a column that orders rows within each
  // group before aggregation; only kStrJoin is order sensitive.
  OpId Aggr(OpId child, AggrKind aggr, ColId result, ColId arg, ColId part,
            ColId order_col = kNoCol);
  // Grouped string join with an explicit separator (fn:string-join and
  // attribute value construction).
  OpId AggrStrJoin(OpId child, ColId result, ColId arg, ColId part,
                   ColId order_col, StrId separator);
  // Expands each input row's [lo, hi] integer range into (iter, item)
  // rows; empty when lo > hi (the XQuery `to` operator).
  OpId Range(OpId child, ColId lo, ColId hi);
  // Passes `child` through unchanged but raises a cardinality error when
  // any iteration of `loop` has fewer than `min_card` or more than
  // `max_card` rows in `child` (fn:zero-or-one / exactly-one /
  // one-or-more; `fn_name` labels the error message).
  OpId CardCheck(OpId child, OpId loop, int64_t min_card, int64_t max_card,
                 StrId fn_name);
  OpId Step(OpId child, Axis axis, NodeTest test);
  OpId Doc(StrId name);
  // Node constructors build one node per row of `loop` (an iter-column
  // plan); `content`/`value` rows are matched by iter and ordered by pos
  // (the seq -> doc order interaction of Section 2).
  OpId Elem(StrId name, OpId content, OpId loop);
  OpId Attr(StrId name, OpId value, OpId loop);
  OpId Text(OpId content, OpId loop);

  // Attaches a provenance label to an operator (overwrites empty only, so
  // shared sub-plans keep their first label).
  void SetProv(OpId id, std::string prov);

  // Operators reachable from `root`, in topological (bottom-up) order.
  std::vector<OpId> ReachableFrom(OpId root) const;

 private:
  uint64_t HashOp(const Op& op) const;
  bool OpEquals(const Op& a, const Op& b) const;
  std::vector<ColId> ComputeSchema(const Op& op) const;

  std::vector<Op> ops_;
  std::unordered_multimap<uint64_t, OpId> index_;
  uint32_t next_constructor_id_ = 1;
};

}  // namespace exrquy

#endif  // EXRQUY_ALGEBRA_ALGEBRA_H_
