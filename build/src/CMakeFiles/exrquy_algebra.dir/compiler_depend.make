# Empty compiler generated dependencies file for exrquy_algebra.
# This may be replaced when dependencies are built.
