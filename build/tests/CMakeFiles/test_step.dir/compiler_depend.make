# Empty compiler generated dependencies file for test_step.
# This may be replaced when dependencies are built.
