// Integration tests over the XMark substrate: every benchmark query runs
// under (a) the baseline configuration and (b) the order-indifference
// configuration with ordering mode unordered, and the result multisets
// must agree — any permutation is admissible under the weakened
// semantics, but never a different bag of items.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/session.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

class XMarkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.004;
    std::string xml = GenerateXMark(options);
    Status st = session_->LoadDocument("auction.xml", xml);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static Session* session_;
};

Session* XMarkTest::session_ = nullptr;

class XMarkQueryTest : public XMarkTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(XMarkQueryTest, BaselineVsUnorderedMultisetEqual) {
  const XMarkQuery& q = XMarkQueries()[GetParam()];

  QueryOptions baseline;
  baseline.enable_order_indifference = false;

  QueryOptions unordered;
  unordered.enable_order_indifference = true;
  unordered.default_ordering = OrderingMode::kUnordered;

  Result<QueryResult> a = session_->Execute(q.text, baseline);
  ASSERT_TRUE(a.ok()) << q.name << ": " << a.status().ToString();
  Result<QueryResult> b = session_->Execute(q.text, unordered);
  ASSERT_TRUE(b.ok()) << q.name << ": " << b.status().ToString();

  std::vector<std::string> ia = a->items;
  std::vector<std::string> ib = b->items;
  std::sort(ia.begin(), ia.end());
  std::sort(ib.begin(), ib.end());
  EXPECT_EQ(ia, ib) << q.name;
}

TEST_P(XMarkQueryTest, OrderedModeExactlyEqual) {
  // With ordering mode ordered, exploiting order indifference must not
  // change the result *sequence* for queries whose result order is fully
  // determined (all of XMark except the implementation-defined
  // distinct-values order in Q10).
  const XMarkQuery& q = XMarkQueries()[GetParam()];
  if (q.name == "Q10") GTEST_SKIP() << "distinct-values order is free";

  QueryOptions baseline;
  baseline.enable_order_indifference = false;

  QueryOptions exploiting;
  exploiting.enable_order_indifference = true;
  exploiting.default_ordering = OrderingMode::kOrdered;

  Result<QueryResult> a = session_->Execute(q.text, baseline);
  ASSERT_TRUE(a.ok()) << q.name << ": " << a.status().ToString();
  Result<QueryResult> b = session_->Execute(q.text, exploiting);
  ASSERT_TRUE(b.ok()) << q.name << ": " << b.status().ToString();
  EXPECT_EQ(a->items, b->items) << q.name;
}

TEST_P(XMarkQueryTest, OptimizationShrinksOrKeepsPlan) {
  const XMarkQuery& q = XMarkQueries()[GetParam()];
  QueryOptions unordered;
  unordered.default_ordering = OrderingMode::kUnordered;
  Result<QueryResult> r = session_->Execute(q.text, unordered);
  ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
  EXPECT_LE(r->plan_optimized.total_ops, r->plan_initial.total_ops)
      << q.name;
  EXPECT_LE(r->plan_optimized.rownum_ops, r->plan_initial.rownum_ops)
      << q.name;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, XMarkQueryTest, ::testing::Range(0, 20),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return XMarkQueries()[info.param].name;
                         });

TEST_F(XMarkTest, SelectedResultsNonEmpty) {
  QueryOptions opts;
  for (const char* name : {"Q2", "Q5", "Q6", "Q7", "Q8", "Q11", "Q13",
                           "Q14", "Q15", "Q16", "Q17", "Q19", "Q20"}) {
    Result<QueryResult> r = session_->Execute(XMarkQueryText(name), opts);
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
    EXPECT_FALSE(r->items.empty()) << name;
  }
}

TEST_F(XMarkTest, Q6CountsAllItems) {
  // Q6 iterates over the single regions element; its count must equal
  // count(//item) since all items live under regions.
  Result<QueryResult> q6 = session_->Execute(XMarkQueryText("Q6"), {});
  ASSERT_TRUE(q6.ok()) << q6.status().ToString();
  Result<QueryResult> all =
      session_->Execute(R"(count(doc("auction.xml")//item))", {});
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(q6->items.size(), 1u);
  EXPECT_EQ(q6->items[0], all->items[0]);
  EXPECT_NE(q6->items[0], "0");
}

}  // namespace
}  // namespace exrquy
