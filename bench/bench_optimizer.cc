// Optimizer analysis cost: the dataflow framework (opt/analyses.h)
// versus the pre-framework one-shot walks it replaced, plus the cost of
// the new fact domains (keys / cardinality / error capability / order
// provenance) and of the whole rewrite pipeline with and without the
// fact-driven rewrites.
//
// The framework must be an overhead-free refactor for the migrated
// analyses: liveness and constant/arbitrary columns compute the same
// facts as verbatim local copies of the old code (kept below as the
// baseline), so `framework_us` vs `legacy_us` is an apples-to-apples
// walk of the same plans and should agree within noise.
//
// The per-domain columns isolate the marginal cost of the two
// order-reasoning domains (semantic types, order dependencies) on top
// of warmed prerequisites, and the surviving-% columns record the
// quantity the whole exercise is about: how many blocking sorts remain
// in the fully optimized plans, per ordering mode.
//
//   { "bench": "optimizer",
//     "queries": [ {"name": "Q1", "ops": N,
//                   "legacy_us": t, "framework_us": t,
//                   "new_facts_us": t, "semtype_us": t, "orderdep_us": t,
//                   "plan_all_rewrites_ms": t, "plan_old_rewrites_ms": t,
//                   "plan_no_certify_ms": t, "certify_us": t,
//                   "rownum_ordered": n, "rownum_unordered": n},
//                  ... ],
//     "totals": { "legacy_us": t, "framework_us": t, ... } }
//
// Output: BENCH_optimizer.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "algebra/stats.h"
#include "bench/bench_util.h"
#include "opt/analyses.h"

namespace exrquy {
namespace {

using Clock = std::chrono::steady_clock;

double UsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Verbatim local copies of the pre-framework one-shot analyses, kept as
// the timing baseline (the framework versions live in opt/analyses.cc).
// ---------------------------------------------------------------------------

std::unordered_map<OpId, ColSet> LegacyICols(const Dag& dag, OpId root,
                                             const ColSet& seed) {
  std::unordered_map<OpId, ColSet> icols;
  icols[root] = seed;
  std::vector<OpId> order = dag.ReachableFrom(root);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    OpId id = *it;
    const Op& op = dag.op(id);
    const ColSet& r = icols[id];
    auto need = [&](size_t child, ColId c) {
      if (c == kNoCol) return;
      icols[op.children[child]].insert(c);
    };
    auto need_set = [&](size_t child, const ColSet& cols) {
      const Op& ch = dag.op(op.children[child]);
      for (ColId c : cols) {
        if (ch.HasCol(c)) icols[op.children[child]].insert(c);
      }
    };
    switch (op.kind) {
      case OpKind::kLit:
      case OpKind::kDoc:
        break;
      case OpKind::kProject:
        for (const auto& [n, o] : op.proj) {
          if (r.count(n) != 0) need(0, o);
        }
        break;
      case OpKind::kSelect:
        need_set(0, r);
        need(0, op.col);
        break;
      case OpKind::kEquiJoin:
      case OpKind::kThetaJoin:
        need_set(0, r);
        need_set(1, r);
        need(0, op.col);
        need(1, op.col2);
        break;
      case OpKind::kCross:
      case OpKind::kUnion:
        need_set(0, r);
        need_set(1, r);
        break;
      case OpKind::kDifference:
      case OpKind::kSemiJoin:
        need_set(0, r);
        for (ColId k : op.keys) {
          need(0, k);
          need(1, k);
        }
        break;
      case OpKind::kDistinct:
        for (ColId c : dag.op(op.children[0]).schema) need(0, c);
        break;
      case OpKind::kRowNum: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        for (const SortKey& k : op.order) need(0, k.col);
        need(0, op.part);
        break;
      }
      case OpKind::kRowId: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        break;
      }
      case OpKind::kFun: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        for (ColId a : op.args) need(0, a);
        break;
      }
      case OpKind::kAggr:
        need(0, op.col2);
        need(0, op.part);
        for (ColId k : op.keys) need(0, k);
        break;
      case OpKind::kStep:
        need(0, col::iter());
        need(0, col::item());
        break;
      case OpKind::kElem:
      case OpKind::kAttr:
      case OpKind::kTextNode:
        need(0, col::iter());
        need(0, col::pos());
        need(0, col::item());
        need(1, col::iter());
        break;
      case OpKind::kRange:
        need(0, col::iter());
        need(0, op.col);
        need(0, op.col2);
        break;
      case OpKind::kCardCheck:
        need_set(0, r);
        need(0, col::iter());
        need(1, col::iter());
        break;
    }
  }
  return icols;
}

class LegacyProps {
 public:
  explicit LegacyProps(const Dag* dag) : dag_(dag) {}

  const ColProps& Get(OpId id) {
    auto it = memo_.find(id);
    if (it != memo_.end()) return it->second;
    ColProps props = Compute(id);
    return memo_.emplace(id, std::move(props)).first->second;
  }

 private:
  ColProps Compute(OpId id) {
    const Op& op = dag_->op(id);
    ColProps out;
    auto child = [&](size_t i) -> const ColProps& {
      return Get(op.children[i]);
    };
    auto inherit = [&](const ColProps& p) {
      for (ColId c : p.constant) {
        if (op.HasCol(c)) out.constant.insert(c);
      }
      for (ColId c : p.arbitrary) {
        if (op.HasCol(c)) out.arbitrary.insert(c);
      }
    };
    switch (op.kind) {
      case OpKind::kLit: {
        for (size_t i = 0; i < op.lit.cols.size(); ++i) {
          bool constant = true;
          for (size_t r = 1; r < op.lit.rows.size(); ++r) {
            if (!(op.lit.rows[r][i] == op.lit.rows[0][i])) {
              constant = false;
              break;
            }
          }
          if (constant) out.constant.insert(op.lit.cols[i]);
        }
        break;
      }
      case OpKind::kProject: {
        const ColProps& p = child(0);
        for (const auto& [n, o] : op.proj) {
          if (p.constant.count(o) != 0) out.constant.insert(n);
          if (p.arbitrary.count(o) != 0) out.arbitrary.insert(n);
        }
        break;
      }
      case OpKind::kSelect:
      case OpKind::kDistinct:
      case OpKind::kDifference:
      case OpKind::kSemiJoin:
      case OpKind::kCardCheck:
        inherit(child(0));
        break;
      case OpKind::kEquiJoin:
      case OpKind::kThetaJoin:
      case OpKind::kCross:
        inherit(child(0));
        inherit(child(1));
        break;
      case OpKind::kUnion: {
        const ColProps& a = child(0);
        const ColProps& b = child(1);
        for (ColId c : a.arbitrary) {
          if (b.arbitrary.count(c) != 0) out.arbitrary.insert(c);
        }
        break;
      }
      case OpKind::kRowNum:
        inherit(child(0));
        break;
      case OpKind::kRowId:
        inherit(child(0));
        out.arbitrary.insert(op.col);
        break;
      case OpKind::kFun: {
        inherit(child(0));
        out.constant.erase(op.col);
        out.arbitrary.erase(op.col);
        bool all_const = true;
        for (ColId a : op.args) {
          if (child(0).constant.count(a) == 0) all_const = false;
        }
        if (all_const) out.constant.insert(op.col);
        break;
      }
      case OpKind::kAggr: {
        const ColProps& p = child(0);
        if (op.part != kNoCol) {
          if (p.constant.count(op.part) != 0) out.constant.insert(op.part);
          if (p.arbitrary.count(op.part) != 0) out.arbitrary.insert(op.part);
        }
        break;
      }
      case OpKind::kRange:
      case OpKind::kStep:
      case OpKind::kElem:
      case OpKind::kAttr:
      case OpKind::kTextNode: {
        bool from_first =
            op.kind == OpKind::kStep || op.kind == OpKind::kRange;
        const ColProps& p = child(from_first ? 0 : 1);
        if (p.constant.count(col::iter()) != 0) {
          out.constant.insert(col::iter());
        }
        if (p.arbitrary.count(col::iter()) != 0) {
          out.arbitrary.insert(col::iter());
        }
        break;
      }
      case OpKind::kDoc:
        out.constant.insert(col::item());
        break;
    }
    return out;
  }

  const Dag* dag_;
  std::unordered_map<OpId, ColProps> memo_;
};

// ---------------------------------------------------------------------------

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

ColSet RootSeed(const Dag& dag, OpId root) {
  ColSet seed;
  for (ColId c : {col::iter(), col::pos(), col::item()}) {
    if (dag.op(root).HasCol(c)) seed.insert(c);
  }
  return seed;
}

struct Row {
  std::string name;
  size_t ops = 0;
  double legacy_us = 0;
  double framework_us = 0;
  double new_facts_us = 0;
  double semtype_us = 0;
  double orderdep_us = 0;
  double plan_all_ms = 0;
  double plan_old_ms = 0;
  double plan_nocert_ms = 0;
  double certify_us = 0;
  size_t rownum_ordered = 0;
  size_t rownum_unordered = 0;
};

void Run() {
  auto session = bench::MakeXMarkSession(0.004, nullptr);
  QueryOptions enabled = bench::Enabled();
  QueryOptions old_rewrites = enabled;
  old_rewrites.distinct_by_keys = false;
  old_rewrites.empty_short_circuit = false;
  old_rewrites.rownum_by_keys = false;
  old_rewrites.rownum_by_od = false;
  // Certificate emission + validation cost: `enabled` plans in the
  // default checking mode, `no_certify` turns the whole machinery off.
  // The delta is what translation validation adds to planning.
  QueryOptions certified = enabled;
  certified.certify.mode = CertifyMode::kCheck;
  QueryOptions no_certify = enabled;
  no_certify.certify.mode = CertifyMode::kOff;

  const int kAnalysisReps = 40;
  const int kPlanReps = 9;
  std::vector<Row> rows;

  for (const XMarkQuery& query : XMarkQueries()) {
    Result<QueryPlans> plans = session->Plan(query.text, enabled);
    if (!plans.ok()) {
      std::fprintf(stderr, "%s: %s\n", query.name.c_str(),
                   plans.status().ToString().c_str());
      continue;
    }
    const Dag& dag = *plans->dag;
    OpId root = plans->initial;
    std::vector<OpId> reachable = dag.ReachableFrom(root);
    ColSet seed = RootSeed(dag, root);

    Row row;
    row.name = query.name;
    row.ops = reachable.size();

    std::vector<double> legacy, framework, fresh, semtype, orderdep;
    for (int i = 0; i < kAnalysisReps; ++i) {
      Clock::time_point t0 = Clock::now();
      auto li = LegacyICols(dag, root, seed);
      LegacyProps lp(&dag);
      for (OpId id : reachable) (void)lp.Get(id);
      legacy.push_back(UsSince(t0));

      t0 = Clock::now();
      auto fi = ComputeICols(dag, root, seed);
      PropertyTracker fp(&dag);
      for (OpId id : reachable) (void)fp.Get(id);
      framework.push_back(UsSince(t0));

      // Sanity: same facts (the verifier audits this on every plan; the
      // bench re-checks so a drifted copy above can't silently skew the
      // baseline).
      if (li != fi) {
        std::fprintf(stderr, "%s: liveness mismatch!\n", query.name.c_str());
        return;
      }

      t0 = Clock::now();
      CardTracker cards(&dag);
      KeyTracker keys(&dag, &cards);
      RaiseTracker raise(&dag, &cards);
      for (OpId id : reachable) {
        (void)cards.Get(id);
        (void)keys.Get(id);
        (void)raise.Get(id);
      }
      (void)ComputeOrderProvenance(dag, root, seed, nullptr);
      fresh.push_back(UsSince(t0));

      // The order-reasoning domains, each timed on top of warmed
      // prerequisites so the column is the domain's marginal cost, not
      // a re-measurement of the facts it consumes.
      PropertyTracker oprops(&dag);
      CardTracker ocards(&dag);
      KeyTracker okeys(&dag, &ocards);
      for (OpId id : reachable) {
        (void)oprops.Get(id);
        (void)ocards.Get(id);
        (void)okeys.Get(id);
      }
      t0 = Clock::now();
      SemTypeTracker sem(&dag, &ocards);
      for (OpId id : reachable) (void)sem.Get(id);
      semtype.push_back(UsSince(t0));
      t0 = Clock::now();
      OrderTracker od(&dag, &oprops, &ocards, &okeys, &sem);
      for (OpId id : reachable) (void)od.Get(id);
      orderdep.push_back(UsSince(t0));
    }
    row.legacy_us = Median(legacy);
    row.framework_us = Median(framework);
    row.new_facts_us = Median(fresh);
    row.semtype_us = Median(semtype);
    row.orderdep_us = Median(orderdep);

    // Surviving % in the fully optimized plans, both ordering modes —
    // the corpus-wide ordered total is the number the order-dependency
    // trades push down (tests/test_plan_shapes.cc pins it).
    QueryOptions ordered;  // exploit on, mode ordered
    Result<QueryPlans> po = session->Plan(query.text, ordered);
    if (po.ok()) {
      row.rownum_ordered =
          CollectPlanStats(*po->dag, po->optimized).rownum_ops;
    }
    Result<QueryPlans> pu = session->Plan(query.text, enabled);
    if (pu.ok()) {
      row.rownum_unordered =
          CollectPlanStats(*pu->dag, pu->optimized).rownum_ops;
    }

    std::vector<double> all_ms, old_ms, cert_ms, nocert_ms;
    for (int i = 0; i < kPlanReps; ++i) {
      Clock::time_point t0 = Clock::now();
      (void)session->Plan(query.text, enabled);
      all_ms.push_back(UsSince(t0) / 1000.0);
      t0 = Clock::now();
      (void)session->Plan(query.text, old_rewrites);
      old_ms.push_back(UsSince(t0) / 1000.0);
      t0 = Clock::now();
      (void)session->Plan(query.text, certified);
      cert_ms.push_back(UsSince(t0) / 1000.0);
      t0 = Clock::now();
      (void)session->Plan(query.text, no_certify);
      nocert_ms.push_back(UsSince(t0) / 1000.0);
    }
    row.plan_all_ms = Median(all_ms);
    row.plan_old_ms = Median(old_ms);
    row.plan_nocert_ms = Median(nocert_ms);
    row.certify_us = (Median(cert_ms) - row.plan_nocert_ms) * 1000.0;
    rows.push_back(row);
  }

  std::printf(
      "Optimizer analysis cost — framework vs pre-framework walks\n\n");
  std::printf("%-6s %5s %11s %13s %13s %11s %11s %10s %10s %10s %6s %6s\n",
              "query", "ops", "legacy_us", "framework_us", "new_facts_us",
              "semtype_us", "orderdep_us", "plan_all", "plan_old",
              "certify_us", "%ord", "%unord");
  Row total;
  for (const Row& r : rows) {
    std::printf(
        "%-6s %5zu %11.1f %13.1f %13.1f %11.1f %11.1f %9.2fms %9.2fms "
        "%10.1f %6zu %6zu\n",
        r.name.c_str(), r.ops, r.legacy_us, r.framework_us, r.new_facts_us,
        r.semtype_us, r.orderdep_us, r.plan_all_ms, r.plan_old_ms,
        r.certify_us, r.rownum_ordered, r.rownum_unordered);
    total.ops += r.ops;
    total.legacy_us += r.legacy_us;
    total.framework_us += r.framework_us;
    total.new_facts_us += r.new_facts_us;
    total.semtype_us += r.semtype_us;
    total.orderdep_us += r.orderdep_us;
    total.plan_all_ms += r.plan_all_ms;
    total.plan_old_ms += r.plan_old_ms;
    total.plan_nocert_ms += r.plan_nocert_ms;
    total.certify_us += r.certify_us;
    total.rownum_ordered += r.rownum_ordered;
    total.rownum_unordered += r.rownum_unordered;
  }
  std::printf(
      "%-6s %5zu %11.1f %13.1f %13.1f %11.1f %11.1f %9.2fms %9.2fms "
      "%10.1f %6zu %6zu\n",
      "total", total.ops, total.legacy_us, total.framework_us,
      total.new_facts_us, total.semtype_us, total.orderdep_us,
      total.plan_all_ms, total.plan_old_ms, total.certify_us,
      total.rownum_ordered, total.rownum_unordered);
  std::printf("certification overhead: %.1f%% of certificate-free planning\n",
              total.plan_nocert_ms > 0
                  ? 100.0 * (total.certify_us / 1000.0) / total.plan_nocert_ms
                  : 0.0);

  FILE* f = std::fopen("BENCH_optimizer.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{ \"bench\": \"optimizer\",\n  \"queries\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ops\": %zu, \"legacy_us\": %.1f, "
                 "\"framework_us\": %.1f, \"new_facts_us\": %.1f, "
                 "\"semtype_us\": %.1f, \"orderdep_us\": %.1f, "
                 "\"plan_all_rewrites_ms\": %.3f, "
                 "\"plan_old_rewrites_ms\": %.3f, "
                 "\"plan_no_certify_ms\": %.3f, \"certify_us\": %.1f, "
                 "\"rownum_ordered\": %zu, \"rownum_unordered\": %zu}%s\n",
                 r.name.c_str(), r.ops, r.legacy_us, r.framework_us,
                 r.new_facts_us, r.semtype_us, r.orderdep_us, r.plan_all_ms,
                 r.plan_old_ms, r.plan_nocert_ms, r.certify_us,
                 r.rownum_ordered, r.rownum_unordered,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"totals\": {\"ops\": %zu, \"legacy_us\": %.1f, "
               "\"framework_us\": %.1f, \"new_facts_us\": %.1f, "
               "\"semtype_us\": %.1f, \"orderdep_us\": %.1f, "
               "\"plan_all_rewrites_ms\": %.3f, "
               "\"plan_old_rewrites_ms\": %.3f, "
               "\"plan_no_certify_ms\": %.3f, \"certify_us\": %.1f, "
               "\"rownum_ordered\": %zu, \"rownum_unordered\": %zu}\n}\n",
               total.ops, total.legacy_us, total.framework_us,
               total.new_facts_us, total.semtype_us, total.orderdep_us,
               total.plan_all_ms, total.plan_old_ms, total.plan_nocert_ms,
               total.certify_us, total.rownum_ordered,
               total.rownum_unordered);
  std::fclose(f);
  std::printf("\nwritten to BENCH_optimizer.json\n");
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
