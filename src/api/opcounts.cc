#include "api/opcounts.h"

#include <iomanip>
#include <sstream>

#include "algebra/stats.h"
#include "xmark/queries.h"

namespace exrquy {

Result<std::string> OpCountReport(Session* session) {
  std::ostringstream out;
  out << "XMark per-query operator counts (initial -> optimized plan)\n"
      << "%  = RowNum (blocking sort)   # = RowId (free numbering)\n"
      << "#^ = positional RowId (ids proven row positions)\n"
      << "vj = equi-joins on recognized value predicates"
      << "   tj = ThetaJoin\n\n"
      << "query  mode       initial  final    %    #   #^   vj   tj\n";
  size_t surviving_ordered = 0;
  size_t surviving_unordered = 0;
  for (const XMarkQuery& q : XMarkQueries()) {
    for (bool unordered : {false, true}) {
      QueryOptions options;
      if (unordered) options.default_ordering = OrderingMode::kUnordered;
      EXRQUY_ASSIGN_OR_RETURN(QueryPlans p,
                              session->Plan(q.text, options));
      PlanStats initial = CollectPlanStats(*p.dag, p.initial);
      PlanStats optimized = CollectPlanStats(*p.dag, p.optimized);
      (unordered ? surviving_unordered : surviving_ordered) +=
          optimized.rownum_ops;
      out << std::left << std::setw(7) << q.name << std::setw(9)
          << (unordered ? "unordered" : "ordered") << std::right
          << std::setw(9) << initial.total_ops << std::setw(7)
          << optimized.total_ops << std::setw(5) << optimized.rownum_ops
          << std::setw(5) << optimized.rowid_ops << std::setw(5)
          << optimized.positional_rowid_ops << std::setw(5)
          << optimized.value_join_ops << std::setw(5)
          << optimized.theta_join_ops << "\n";
    }
  }
  out << "\nsurviving %: ordered " << surviving_ordered << ", unordered "
      << surviving_unordered << "\n";
  return out.str();
}

}  // namespace exrquy
