// String interning pool. Element/attribute names, text contents, and
// string items are stored once and referred to by dense 32-bit ids, which
// keeps the columnar engine's values fixed-width (MonetDB does the same
// with its string heaps).
//
// The pool is thread-safe: Intern serializes writers behind a mutex,
// while Get is wait-free — strings live in fixed-size chunks whose
// addresses never change, so concurrent growth cannot invalidate a
// reader. Parallel operator kernels hit Get on every string comparison,
// which is why it must not take the writers' lock.
#ifndef EXRQUY_COMMON_STR_POOL_H_
#define EXRQUY_COMMON_STR_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace exrquy {

class MemoryBudget;

using StrId = uint32_t;

class StrPool {
 public:
  StrPool();
  ~StrPool();

  StrPool(const StrPool&) = delete;
  StrPool& operator=(const StrPool&) = delete;

  // Interns `s`, returning its dense id. Identical strings share an id.
  // Safe to call from multiple threads; the id ordering between
  // concurrent first-time interns is unspecified (never observable in
  // results: all value comparisons go through string contents).
  StrId Intern(std::string_view s);

  // Returns the string for `id`. The reference is stable for the lifetime
  // of the pool. Wait-free; safe concurrently with Intern.
  const std::string& Get(StrId id) const;

  // Id of the empty string (always 0).
  static constexpr StrId kEmpty = 0;

  size_t size() const { return size_.load(std::memory_order_acquire); }

  // Attaches (or, with nullptr, detaches) a per-query MemoryBudget.
  // While attached, every first-time intern charges its payload +
  // bookkeeping bytes. Serialized with Intern behind mu_.
  void set_budget(MemoryBudget* budget);

  // Rolls the pool back to its first `n` strings: ids >= n are erased
  // from the index, their storage freed, and their bytes returned to the
  // attached budget (if any). Callers must guarantee no live StrId >= n
  // survives the call (Session snapshots size() per query). Not safe
  // concurrently with Get on the dropped range.
  void TruncateTo(size_t n);

  // Approximate bytes charged for interning a string of length `len`
  // (payload + std::string + hash-index entry). Exposed so tests can
  // predict budget numbers.
  static constexpr size_t InternedBytes(size_t len) {
    return len + sizeof(std::string) + 48;
  }

 private:
  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;  // 4096
  static constexpr size_t kMaxChunks = size_t{1} << 14;  // 64M strings

  // chunks_[c] is null until the pool grows into chunk c, then an
  // immovable array of kChunkSize strings.
  std::unique_ptr<std::atomic<std::string*>[]> chunks_;
  std::atomic<size_t> size_{0};

  std::mutex mu_;  // guards index_, growth, and budget_
  std::unordered_map<std::string_view, StrId> index_;
  MemoryBudget* budget_ = nullptr;
};

}  // namespace exrquy

#endif  // EXRQUY_COMMON_STR_POOL_H_
