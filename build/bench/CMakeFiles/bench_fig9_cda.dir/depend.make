# Empty dependencies file for bench_fig9_cda.
# This may be replaced when dependencies are built.
