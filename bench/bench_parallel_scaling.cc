// Parallel-engine scaling on the XMark query set: every query executed
// at 1 / 2 / 4 / hardware threads, median wall clock per configuration,
// dumped both as a table and as BENCH_parallel.json (schema below).
//
// Thread count 1 is the exact serial evaluation order; the other
// configurations must return byte-identical results, and the bench
// re-checks that on every run (a scaling number for a wrong answer is
// worthless). The JSON records hardware_concurrency so a reader can
// tell a flat profile measured on a single hardware thread (where the
// scheduler degrades to serial-plus-overhead) from a genuinely
// non-scaling kernel.
//
//   { "bench": "parallel_scaling",
//     "scale": 0.016, "doc_bytes": N, "hardware_concurrency": N,
//     "underprovisioned": bool,   // hardware_concurrency < max benched T
//     "chunk_rows": 65536, "morsel_rows": N,
//     "threads": [1, 2, 4, ...],
//     "queries": [ {"name": "Q1", "ms": [t1, t2, t4, ...],
//                   "speedup_vs_serial": [...]}, ... ] }
//
// When the machine has fewer hardware threads than the largest benched
// configuration, the multi-thread columns measure scheduling overhead on
// an oversubscribed core, not scaling — the JSON says so explicitly
// ("underprovisioned": true) and a warning goes to stderr, instead of
// silently publishing 0.4-1.0x "speedups".
//
// EXRQUY_BENCH_SCALE overrides the document scale factor.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"

namespace exrquy {
namespace {

void Run() {
  double scale = bench::EnvScale("EXRQUY_BENCH_SCALE", 0.016);
  size_t doc_bytes = 0;
  auto session = bench::MakeXMarkSession(scale, &doc_bytes);

  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::vector<int> threads = {1, 2, 4};
  if (hw > 4) threads.push_back(static_cast<int>(hw));

  int max_threads = threads.back();
  bool underprovisioned = hw < static_cast<size_t>(max_threads);
  if (underprovisioned) {
    std::fprintf(stderr,
                 "warning: hardware_concurrency (%zu) < max benched thread "
                 "count (%d); multi-thread columns measure oversubscription "
                 "overhead, not scaling\n",
                 hw, max_threads);
  }

  std::printf(
      "Parallel scaling — XMark, %.3f scale (%zu KB), hardware threads: "
      "%zu\n\n",
      scale, doc_bytes / 1024, hw);
  std::printf("%-6s", "query");
  for (int t : threads) std::printf("  %7dT", t);
  std::printf("  %9s\n", "x at 4T");

  struct Row {
    std::string name;
    std::vector<double> ms;
  };
  std::vector<Row> rows;

  for (const XMarkQuery& query : XMarkQueries()) {
    Row row;
    row.name = query.name;
    std::string reference;
    bool ok = true;
    for (int t : threads) {
      QueryOptions options;
      options.num_threads = t;
      QueryResult result;
      double ms =
          bench::MedianExecMs(session.get(), query.text, options, 5, &result);
      if (ms < 0) {
        ok = false;
        break;
      }
      if (t == 1) {
        reference = result.serialized;
      } else if (result.serialized != reference) {
        std::fprintf(stderr, "%s: %dT result differs from serial!\n",
                     query.name.c_str(), t);
        std::exit(1);
      }
      row.ms.push_back(ms);
    }
    if (!ok) continue;
    std::printf("%-6s", row.name.c_str());
    for (double ms : row.ms) std::printf("  %8.2f", ms);
    double at4 = row.ms.size() > 2 && row.ms[2] > 0 ? row.ms[0] / row.ms[2]
                                                    : 0.0;
    std::printf("  %8.2fx\n", at4);
    rows.push_back(std::move(row));
  }

  std::FILE* out = std::fopen("BENCH_parallel.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    std::exit(1);
  }
  // The engine defaults morsel_rows to chunk_rows; we bench defaults.
  std::fprintf(out,
               "{\n  \"bench\": \"parallel_scaling\",\n"
               "  \"scale\": %g,\n  \"doc_bytes\": %zu,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"underprovisioned\": %s,\n"
               "  \"chunk_rows\": 65536,\n  \"morsel_rows\": 65536,\n"
               "  \"threads\": [",
               scale, doc_bytes, hw, underprovisioned ? "true" : "false");
  for (size_t i = 0; i < threads.size(); ++i) {
    std::fprintf(out, "%s%d", i ? ", " : "", threads[i]);
  }
  std::fprintf(out, "],\n  \"queries\": [\n");
  for (size_t r = 0; r < rows.size(); ++r) {
    std::fprintf(out, "    {\"name\": \"%s\", \"ms\": [",
                 rows[r].name.c_str());
    for (size_t i = 0; i < rows[r].ms.size(); ++i) {
      std::fprintf(out, "%s%.3f", i ? ", " : "", rows[r].ms[i]);
    }
    std::fprintf(out, "], \"speedup_vs_serial\": [");
    for (size_t i = 0; i < rows[r].ms.size(); ++i) {
      double x = rows[r].ms[i] > 0 ? rows[r].ms[0] / rows[r].ms[i] : 0.0;
      std::fprintf(out, "%s%.3f", i ? ", " : "", x);
    }
    std::fprintf(out, "]}%s\n", r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_parallel.json\n");
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
