// Ablation (ours): which part of the order-indifference machinery
// contributes what. For a set of representative XMark queries, execution
// time is measured with the machinery enabled incrementally:
//
//   baseline      — ordered rules, no rewriting (Section 5's baseline)
//   +mode rules   — LOC#/BIND#/FN:UNORDERED only (# instead of %, but the
//                   dead order derivations still computed)
//   +CDA          — column dependency analysis prunes them (Section 4.1)
//   +weaken       — constant/arbitrary-column weakening (Section 7)
//   +distinct     — disjointness-based Distinct removal (Section 4.2)
//   +step merge   — descendant-or-self/child fusion (full configuration)
#include <cstdio>

#include "bench/bench_util.h"

namespace exrquy {
namespace {

void Run() {
  double scale = bench::EnvScale("EXRQUY_SCALE", 0.02);
  size_t bytes = 0;
  auto session = bench::MakeXMarkSession(scale, &bytes);
  std::printf("Ablation of the rewrite pipeline (instance %zu KB)\n\n",
              bytes / 1024);

  struct Config {
    const char* name;
    QueryOptions options;
  };
  QueryOptions baseline = bench::Baseline();

  QueryOptions mode_only = bench::Enabled();
  mode_only.column_pruning = false;
  mode_only.weaken_rownum = false;
  mode_only.distinct_elimination = false;
  mode_only.step_merging = false;

  QueryOptions cda = mode_only;
  cda.column_pruning = true;

  QueryOptions weaken = cda;
  weaken.weaken_rownum = true;

  QueryOptions distinct = weaken;
  distinct.distinct_elimination = true;

  QueryOptions full = bench::Enabled();

  const Config configs[] = {
      {"baseline", baseline}, {"+mode rules", mode_only}, {"+CDA", cda},
      {"+weaken", weaken},    {"+distinct", distinct},    {"+merge", full},
  };

  std::printf("%-6s", "query");
  for (const Config& c : configs) std::printf(" %12s", c.name);
  std::printf("   (median ms over 3 runs)\n");

  for (const char* name : {"Q2", "Q5", "Q6", "Q7", "Q11", "Q14", "Q19",
                           "Q20"}) {
    std::printf("%-6s", name);
    for (const Config& c : configs) {
      double ms = bench::MedianExecMs(session.get(), XMarkQueryText(name),
                                      c.options, 3);
      std::printf(" %12.2f", ms);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected: the mode rules already avoid most blocking sorts (# in\n"
      "place of %%); CDA prunes the dead order-derivation inputs on top;\n"
      "step merging dominates for Q6/Q7/Q14 (descendant steps).\n");
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
