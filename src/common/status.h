// Status / Result<T>: exception-free error propagation, in the style of
// absl::Status / rocksdb::Status. Recoverable errors (syntax errors in
// queries or documents, dynamic type errors during evaluation) travel as
// Status values; programming errors abort via EXRQUY_CHECK.
#ifndef EXRQUY_COMMON_STATUS_H_
#define EXRQUY_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace exrquy {

enum class StatusCode {
  kOk = 0,  // (exposed for tests; Status::ok() is the usual check)
  kInvalidArgument,   // malformed input (query text, XML text)
  kNotFound,          // unknown document, variable, function
  kUnimplemented,     // outside the supported XQuery subset
  kTypeError,         // XQuery dynamic type error (err:XPTY*)
  kCardinalityError,  // fn:exactly-one etc. violated
  kInternal,
  kCancelled,          // CancelToken tripped by the caller
  kDeadlineExceeded,   // QueryOptions deadline / EXRQUY_DEADLINE_MS hit
  kResourceExhausted,  // per-query MemoryBudget crossed
  kUnavailable,        // admission control shed the request (api/service.h)
};

// Total number of StatusCode values. Kept adjacent to the enum so adding
// a code forces this constant (and the name table in status.cc) to move
// with it; tests/test_common.cc asserts every code in [0, count) has a
// printable name and that count itself does not.
inline constexpr int kStatusCodeCount =
    static_cast<int>(StatusCode::kUnavailable) + 1;

// "InvalidArgument", "Unavailable", ... — "Unknown" for out-of-range
// values. Exposed (rather than private to Status::ToString) so tests can
// assert the table covers every code.
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path.
// [[nodiscard]] on the type makes every Status-returning API warn when a
// caller drops the result — silently ignored errors are the one failure
// mode this style cannot otherwise catch.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    EXRQUY_DCHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status Unimplemented(std::string message);
Status TypeError(std::string message);
Status CardinalityError(std::string message);
Status Internal(std::string message);
Status Cancelled(std::string message);
Status DeadlineExceeded(std::string message);
Status ResourceExhausted(std::string message);
Status Unavailable(std::string message);

// Result<T> carries either a value or an error Status. [[nodiscard]]
// for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from values and errors keeps call sites terse,
  // the same convenience trade-off absl::StatusOr makes. The template
  // also accepts values convertible to T (e.g. shared_ptr<X> for
  // Result<shared_ptr<const X>>).
  template <typename U,
            typename = std::enable_if_t<
                std::is_convertible_v<U&&, T> &&
                !std::is_same_v<std::decay_t<U>, Status> &&
                !std::is_same_v<std::decay_t<U>, Result>>>
  Result(U&& value)  // NOLINT(runtime/explicit)
      : value_(std::forward<U>(value)) {}
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    EXRQUY_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    EXRQUY_CHECK(ok());
    return *value_;
  }
  const T& value() const& {
    EXRQUY_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    EXRQUY_CHECK(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace exrquy

// Early-return helpers (statement macros; prefixed per style guide).
#define EXRQUY_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::exrquy::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define EXRQUY_CONCAT_INNER_(a, b) a##b
#define EXRQUY_CONCAT_(a, b) EXRQUY_CONCAT_INNER_(a, b)

#define EXRQUY_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#define EXRQUY_ASSIGN_OR_RETURN(lhs, expr) \
  EXRQUY_ASSIGN_OR_RETURN_IMPL_(EXRQUY_CONCAT_(_res_, __LINE__), lhs, expr)

#endif  // EXRQUY_COMMON_STATUS_H_
