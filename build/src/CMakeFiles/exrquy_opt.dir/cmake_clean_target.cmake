file(REMOVE_RECURSE
  "libexrquy_opt.a"
)
