// Plan-shape tests for the compilation scheme ·⇒·: the ordered rules LOC
// and BIND emit % where the order interactions demand it; their # twins
// LOC# and BIND# (Figure 7) fire under ordering mode unordered; Rule
// FN:UNORDERED implements fn:unordered(); and the baseline configuration
// treats fn:unordered() as the identity (Section 6).
#include <gtest/gtest.h>

#include "algebra/stats.h"
#include "api/session.h"

namespace exrquy {
namespace {

class CompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        session_.LoadDocument("t.xml", "<a><b><c/><d/></b><c/></a>").ok());
  }

  // Plan statistics of the *emitted* (pre-rewrite) plan.
  PlanStats Emitted(const std::string& query, const QueryOptions& options) {
    Result<QueryPlans> p = session_.Plan(query, options);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return CollectPlanStats(*p->dag, p->initial);
  }

  static QueryOptions Ordered() {
    QueryOptions o;
    o.default_ordering = OrderingMode::kOrdered;
    return o;
  }

  static QueryOptions Unordered() {
    QueryOptions o;
    o.default_ordering = OrderingMode::kUnordered;
    return o;
  }

  static QueryOptions BaselineOpts() {
    QueryOptions o;
    o.enable_order_indifference = false;
    return o;
  }

  Session session_;
};

TEST_F(CompilerTest, RuleLocEmitsRowNumPerStep) {
  PlanStats s = Emitted(R"(doc("t.xml")/a/b)", Ordered());
  // Two steps, each wrapped in %pos:<item>|iter (plus the doc step's
  // absence — fn:doc contributes none).
  EXPECT_EQ(s.step_ops, 2u);
  EXPECT_EQ(s.rownum_ops, 2u);
  EXPECT_EQ(s.rowid_ops, 0u);
}

TEST_F(CompilerTest, RuleLocSharpEmitsRowId) {
  PlanStats s = Emitted(R"(doc("t.xml")/a/b)", Unordered());
  EXPECT_EQ(s.step_ops, 2u);
  EXPECT_EQ(s.rownum_ops, 0u);
  EXPECT_EQ(s.rowid_ops, 2u);
}

TEST_F(CompilerTest, RuleBindUsesRowNumOrderedRowIdUnordered) {
  const std::string q = "for $x in (1,2,3) return $x";
  PlanStats ordered = Emitted(q, Ordered());
  PlanStats unordered = Emitted(q, Unordered());
  // Ordered: %bind:<iter,pos> plus the back-map %pos1.
  EXPECT_EQ(ordered.rownum_ops, 3u);  // sequence, bind, back-map
  EXPECT_EQ(ordered.rowid_ops, 0u);
  // Unordered: #bind replaces the bind %; the back-map % remains (the
  // iter->seq interaction is not disabled by mode unordered — Fig. 6(b)).
  EXPECT_EQ(unordered.rownum_ops, 2u);
  EXPECT_EQ(unordered.rowid_ops, 1u);
}

TEST_F(CompilerTest, FnUnorderedIsIdentityInBaseline) {
  const std::string q = "unordered(for $x in (1,2) return $x)";
  PlanStats base = Emitted(q, BaselineOpts());
  PlanStats enabled = Emitted(q, Ordered());
  // The enabled configuration appends #pos(π); baseline compiles the
  // argument only.
  EXPECT_EQ(base.rowid_ops, 0u);
  EXPECT_GE(enabled.rowid_ops, 1u);
}

TEST_F(CompilerTest, BaselineForcesOrderedModeEvenWithProlog) {
  const std::string q =
      R"(declare ordering unordered; doc("t.xml")/a/b)";
  PlanStats base = Emitted(q, BaselineOpts());
  EXPECT_EQ(base.rowid_ops, 0u);
  EXPECT_EQ(base.rownum_ops, 2u);
  PlanStats enabled = Emitted(q, Ordered());  // prolog overrides default
  EXPECT_EQ(enabled.rowid_ops, 2u);
}

TEST_F(CompilerTest, OrderedBraceRestoresStrictRules) {
  const std::string q =
      R"(ordered { doc("t.xml")/a/b })";
  PlanStats s = Emitted(q, Unordered());
  EXPECT_EQ(s.rownum_ops, 2u);
  EXPECT_EQ(s.rowid_ops, 0u);
}

TEST_F(CompilerTest, UnorderedBraceWeakensLexically) {
  const std::string q =
      R"((doc("t.xml")/a/b, unordered { doc("t.xml")/a/b }))";
  PlanStats s = Emitted(q, Ordered());
  // The plain path uses %, the unordered one # — mixed in one plan, the
  // "ability to freely mix order-dependent and order-indifferent code"
  // (Section 4). The shared path below the unordered{} braces is compiled
  // once per mode.
  EXPECT_GE(s.rownum_ops, 2u);
  EXPECT_GE(s.rowid_ops, 2u);
}

TEST_F(CompilerTest, OrderByFreesTheBinding) {
  const std::string q =
      "for $x in (3,1,2) order by $x return $x";
  PlanStats s = Emitted(q, Ordered());
  // BIND# fires although the mode is ordered: the result is explicitly
  // reordered (context (f) of Section 1).
  EXPECT_GE(s.rowid_ops, 1u);
}

TEST_F(CompilerTest, SharedSubplansViaLet) {
  // $x is used twice; the DAG must share its plan (Section 3: "the
  // emitted code contains significant sharing opportunities").
  PlanStats once = Emitted(R"(count(doc("t.xml")//c))", Ordered());
  PlanStats twice = Emitted(
      R"(let $x := doc("t.xml")//c return (count($x), count($x)))",
      Ordered());
  // Far less than double: the path is compiled and referenced once.
  EXPECT_LT(twice.total_ops, 2 * once.total_ops);
  EXPECT_EQ(twice.step_ops, once.step_ops);
}

TEST_F(CompilerTest, CompileErrors) {
  EXPECT_FALSE(session_.Execute("$undefined").ok());
  EXPECT_FALSE(session_.Execute("nosuchfunction(1)").ok());
  EXPECT_FALSE(session_.Execute("fn:position()").ok());
  EXPECT_FALSE(session_.Execute("count(1, 2)").ok());
  EXPECT_FALSE(session_.Execute(R"(doc($dynamic))").ok());
  // order by across multiple for clauses is a documented limitation.
  Result<QueryResult> r = session_.Execute(
      "for $a in (1,2) for $b in (3,4) order by $b return $a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST_F(CompilerTest, ProvenanceLabelsAttached) {
  Result<QueryPlans> p =
      session_.Plan(R"(count(doc("t.xml")//c))", Ordered());
  ASSERT_TRUE(p.ok());
  bool saw_count = false;
  bool saw_path = false;
  for (OpId id : p->dag->ReachableFrom(p->initial)) {
    const std::string& prov = p->dag->op(id).prov;
    if (prov == "fn:count") saw_count = true;
    if (prov.find("child::c") != std::string::npos) saw_path = true;
  }
  EXPECT_TRUE(saw_count);
  EXPECT_TRUE(saw_path);
}

TEST_F(CompilerTest, QuantifierBindFollowsMode) {
  const std::string q = "some $x in (1,2) satisfies $x > 1";
  PlanStats ordered = Emitted(q, Ordered());
  PlanStats unordered = Emitted(q, Unordered());
  EXPECT_GT(ordered.rownum_ops, unordered.rownum_ops);
}

}  // namespace
}  // namespace exrquy
