#include "opt/analyses.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace exrquy {

// ---------------------------------------------------------------------------
// Column liveness: backward set-union analysis. The transfer edges are
// the demand rules of Figure 8 — exactly the edges the one-shot walk in
// the verifier's independent re-derivation uses (opt/verify.cc), which
// cross-checks this implementation on every verified plan.
// ---------------------------------------------------------------------------

namespace {

struct LivenessAnalysis {
  using Fact = ColSet;

  Fact Bottom(const Dag&, OpId) const { return {}; }

  bool Join(Fact* into, const Fact& from) const {
    bool changed = false;
    for (ColId c : from) changed |= into->insert(c).second;
    return changed;
  }

  void Transfer(const Dag& dag, OpId id, const Fact& r,
                std::vector<Fact>* out) const {
    const Op& op = dag.op(id);
    // Demands a specific column of child `child` (unconditionally: the
    // verifier audits that demanded columns are producible).
    auto need = [&](size_t child, ColId c) {
      if (c == kNoCol) return;
      EXRQUY_DCHECK(dag.op(op.children[child]).HasCol(c));
      (*out)[child].insert(c);
    };
    // Passes the upstream demand through to child `child`, restricted to
    // the columns that child produces.
    auto need_set = [&](size_t child, const ColSet& cols) {
      const Op& ch = dag.op(op.children[child]);
      for (ColId c : cols) {
        if (ch.HasCol(c)) (*out)[child].insert(c);
      }
    };

    switch (op.kind) {
      case OpKind::kLit:
      case OpKind::kDoc:
        break;
      case OpKind::kProject:
        for (const auto& [n, o] : op.proj) {
          if (r.count(n) != 0) need(0, o);
        }
        break;
      case OpKind::kSelect:
        need_set(0, r);
        need(0, op.col);
        break;
      case OpKind::kEquiJoin:
      case OpKind::kThetaJoin:
        need_set(0, r);
        need_set(1, r);
        need(0, op.col);
        need(1, op.col2);
        break;
      case OpKind::kCross:
        need_set(0, r);
        need_set(1, r);
        break;
      case OpKind::kUnion:
        need_set(0, r);
        need_set(1, r);
        break;
      case OpKind::kDifference:
      case OpKind::kSemiJoin:
        need_set(0, r);
        for (ColId k : op.keys) {
          need(0, k);
          need(1, k);
        }
        break;
      case OpKind::kDistinct: {
        // Duplicate elimination depends on every input column.
        for (ColId c : dag.op(op.children[0]).schema) need(0, c);
        break;
      }
      case OpKind::kRowNum: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        for (const SortKey& k : op.order) need(0, k.col);
        need(0, op.part);
        break;
      }
      case OpKind::kRowId: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        break;
      }
      case OpKind::kFun: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        for (ColId a : op.args) need(0, a);
        break;
      }
      case OpKind::kAggr:
        need(0, op.col2);
        need(0, op.part);
        for (ColId k : op.keys) need(0, k);
        break;
      case OpKind::kStep:
        need(0, col::iter());
        need(0, col::item());
        break;
      case OpKind::kElem:
      case OpKind::kAttr:
      case OpKind::kTextNode:
        need(0, col::iter());
        need(0, col::pos());
        need(0, col::item());
        need(1, col::iter());
        break;
      case OpKind::kRange:
        need(0, col::iter());
        need(0, op.col);
        need(0, op.col2);
        break;
      case OpKind::kCardCheck:
        need_set(0, r);
        need(0, col::iter());
        need(1, col::iter());
        break;
    }
  }
};

}  // namespace

std::unordered_map<OpId, ColSet> ComputeICols(const Dag& dag, OpId root,
                                              const ColSet& seed) {
  BackwardDataflow<LivenessAnalysis> engine(&dag);
  return engine.Solve(root, seed);
}

std::unordered_map<OpId, uint32_t> ConsumerCounts(const Dag& dag, OpId root) {
  std::unordered_map<OpId, uint32_t> counts;
  for (OpId id : dag.ReachableFrom(root)) {
    counts.try_emplace(id, 0);
    for (OpId c : dag.op(id).children) ++counts[c];
  }
  ++counts[root];
  return counts;
}

// ---------------------------------------------------------------------------
// Constant / arbitrary-order columns: forward analysis. The transfer is
// the per-operator rule set the old PropertyTracker applied in its
// memoized bottom-up walk, unchanged (and deliberately without the
// single-row saturation the verifier's independent derivation performs —
// the claims must stay a subset of the derivable facts, not equal).
// ---------------------------------------------------------------------------

ColProps ConstArbAnalysis::Bottom(const Dag&, OpId) const { return {}; }

bool ConstArbAnalysis::Join(ColProps* into, const ColProps& from) const {
  bool changed = false;
  for (ColId c : from.constant) changed |= into->constant.insert(c).second;
  for (ColId c : from.arbitrary) changed |= into->arbitrary.insert(c).second;
  return changed;
}

ColProps ConstArbAnalysis::Transfer(
    const Dag& dag, OpId id, const std::vector<const ColProps*>& in) const {
  const Op& op = dag.op(id);
  ColProps out;
  auto child = [&](size_t i) -> const ColProps& { return *in[i]; };
  auto inherit = [&](const ColProps& p) {
    for (ColId c : p.constant) {
      if (op.HasCol(c)) out.constant.insert(c);
    }
    for (ColId c : p.arbitrary) {
      if (op.HasCol(c)) out.arbitrary.insert(c);
    }
  };

  switch (op.kind) {
    case OpKind::kLit: {
      for (size_t i = 0; i < op.lit.cols.size(); ++i) {
        bool constant = true;
        for (size_t r = 1; r < op.lit.rows.size(); ++r) {
          if (!(op.lit.rows[r][i] == op.lit.rows[0][i])) {
            constant = false;
            break;
          }
        }
        if (constant) out.constant.insert(op.lit.cols[i]);
      }
      break;
    }
    case OpKind::kProject: {
      const ColProps& p = child(0);
      for (const auto& [n, o] : op.proj) {
        if (p.constant.count(o) != 0) out.constant.insert(n);
        if (p.arbitrary.count(o) != 0) out.arbitrary.insert(n);
      }
      break;
    }
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
    case OpKind::kCardCheck:
      inherit(child(0));
      break;
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin:
    case OpKind::kCross:
      inherit(child(0));
      inherit(child(1));
      break;
    case OpKind::kUnion: {
      // A column stays constant only if both branches are constant with
      // the same value — value tracking is out of scope, so constancy is
      // dropped; arbitrariness survives if both branches are arbitrary.
      const ColProps& a = child(0);
      const ColProps& b = child(1);
      for (ColId c : a.arbitrary) {
        if (b.arbitrary.count(c) != 0) out.arbitrary.insert(c);
      }
      break;
    }
    case OpKind::kRowNum:
      inherit(child(0));
      // The produced rank is meaningful (unless its criteria were
      // arbitrary — but then the rewriter turns the op into # anyway).
      break;
    case OpKind::kRowId:
      inherit(child(0));
      // Positional ids are proven row positions — physically ascending —
      // so only an arbitrary # makes its column order-meaningless.
      if (!op.positional) out.arbitrary.insert(op.col);
      break;
    case OpKind::kFun: {
      inherit(child(0));
      out.constant.erase(op.col);
      out.arbitrary.erase(op.col);
      bool all_const = true;
      for (ColId a : op.args) {
        if (child(0).constant.count(a) == 0) all_const = false;
      }
      if (all_const) out.constant.insert(op.col);
      break;
    }
    case OpKind::kAggr: {
      const ColProps& p = child(0);
      if (op.part != kNoCol) {
        if (p.constant.count(op.part) != 0) out.constant.insert(op.part);
        if (p.arbitrary.count(op.part) != 0) out.arbitrary.insert(op.part);
      }
      break;
    }
    case OpKind::kRange:
    case OpKind::kStep:
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode: {
      // The iter column descends from the context/loop input (child 0 for
      // steps and ranges, child 1 — the loop — for constructors).
      bool from_first =
          op.kind == OpKind::kStep || op.kind == OpKind::kRange;
      const ColProps& p = child(from_first ? 0 : 1);
      if (p.constant.count(col::iter()) != 0) {
        out.constant.insert(col::iter());
      }
      if (p.arbitrary.count(col::iter()) != 0) {
        out.arbitrary.insert(col::iter());
      }
      break;
    }
    case OpKind::kDoc:
      out.constant.insert(col::item());
      break;
  }
  return out;
}

const ColProps& PropertyTracker::Get(OpId id) { return engine_.Get(id); }

// ---------------------------------------------------------------------------
// Cardinality intervals.
// ---------------------------------------------------------------------------

namespace {

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a == kUnboundedRows || b == kUnboundedRows) return kUnboundedRows;
  uint64_t s = a + b;
  return s < a ? kUnboundedRows : s;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnboundedRows || b == kUnboundedRows) return kUnboundedRows;
  if (a > kUnboundedRows / b) return kUnboundedRows;
  return a * b;
}

}  // namespace

std::string CardRange::ToString() const {
  std::string lo = min == kUnboundedRows ? "inf" : std::to_string(min);
  std::string hi = max == kUnboundedRows ? "inf" : std::to_string(max);
  return "[" + lo + "," + hi + "]";
}

CardRange CardAnalysis::Bottom(const Dag&, OpId) const { return {}; }

bool CardAnalysis::Join(CardRange* into, const CardRange& from) const {
  bool changed = false;
  if (from.min < into->min) {
    into->min = from.min;
    changed = true;
  }
  if (from.max > into->max) {
    into->max = from.max;
    changed = true;
  }
  return changed;
}

CardRange CardAnalysis::Transfer(
    const Dag& dag, OpId id, const std::vector<const CardRange*>& in) const {
  const Op& op = dag.op(id);
  auto child = [&](size_t i) -> const CardRange& { return *in[i]; };
  CardRange out;
  switch (op.kind) {
    case OpKind::kLit:
      out.min = out.max = op.lit.rows.size();
      break;
    case OpKind::kProject:
    case OpKind::kRowNum:
    case OpKind::kRowId:
    case OpKind::kFun:
    case OpKind::kCardCheck:
      out = child(0);
      break;
    case OpKind::kSelect:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
      out.min = 0;
      out.max = child(0).max;
      break;
    case OpKind::kDistinct:
      out.min = child(0).min > 0 ? 1 : 0;
      out.max = child(0).max;
      break;
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin:
      out.min = 0;
      out.max = SatMul(child(0).max, child(1).max);
      break;
    case OpKind::kCross:
      out.min = SatMul(child(0).min, child(1).min);
      out.max = SatMul(child(0).max, child(1).max);
      break;
    case OpKind::kUnion:
      out.min = SatAdd(child(0).min, child(1).min);
      out.max = SatAdd(child(0).max, child(1).max);
      break;
    case OpKind::kAggr:
      if (op.part == kNoCol) {
        // The whole table is one group, and the engine emits that group
        // even for an empty input (count() = 0, EBV = false, ...).
        out.min = out.max = 1;
      } else {
        out.min = child(0).min > 0 ? 1 : 0;
        out.max = child(0).max;
      }
      break;
    case OpKind::kStep:
    case OpKind::kRange:
      // Arbitrary fan-out per context row; empty context stays empty.
      out.min = 0;
      out.max = child(0).max == 0 ? 0 : kUnboundedRows;
      break;
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode:
      // One constructed node per row of the loop relation (child 1).
      out = child(1);
      break;
    case OpKind::kDoc:
      out.min = out.max = 1;
      break;
  }
  return out;
}

const CardRange& CardTracker::Get(OpId id) { return engine_.Get(id); }

// ---------------------------------------------------------------------------
// Key columns.
// ---------------------------------------------------------------------------

ColSet KeyAnalysis::Bottom(const Dag&, OpId) const { return {}; }

bool KeyAnalysis::Join(ColSet* into, const ColSet& from) const {
  bool changed = false;
  for (ColId c : from) changed |= into->insert(c).second;
  return changed;
}

ColSet KeyAnalysis::Transfer(const Dag& dag, OpId id,
                             const std::vector<const ColSet*>& in) const {
  const Op& op = dag.op(id);
  auto child = [&](size_t i) -> const ColSet& { return *in[i]; };
  auto at_most_one = [&](size_t i) {
    return cards->Get(op.children[i]).max <= 1;
  };
  ColSet out;
  // Keys of a child that survive into this operator's schema.
  auto inherit = [&](const ColSet& k) {
    for (ColId c : op.schema) {
      if (k.count(c) != 0) out.insert(c);
    }
  };

  switch (op.kind) {
    case OpKind::kLit: {
      size_t n = op.lit.rows.size();
      for (size_t i = 0; i < op.lit.cols.size(); ++i) {
        bool distinct = true;
        for (size_t r = 0; r < n && distinct; ++r) {
          for (size_t r2 = r + 1; r2 < n; ++r2) {
            if (op.lit.rows[r][i] == op.lit.rows[r2][i]) {
              distinct = false;
              break;
            }
          }
        }
        if (distinct) out.insert(op.lit.cols[i]);
      }
      break;
    }
    case OpKind::kProject:
      for (const auto& [n, o] : op.proj) {
        if (child(0).count(o) != 0) out.insert(n);
      }
      break;
    // Row subsets: distinct values stay distinct.
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
    case OpKind::kCardCheck:
      inherit(child(0));
      break;
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin:
    case OpKind::kCross: {
      // A side's keys survive when each of its rows appears at most
      // once: the other side contributes at most one match per row.
      // (A ThetaJoin row can match several distinct far-side values
      // even when those are duplicate-free, so only the <=1-row case
      // applies there, as for ×.)
      bool left_once;
      bool right_once;
      if (op.kind == OpKind::kEquiJoin) {
        left_once = child(1).count(op.col2) != 0 || at_most_one(1);
        right_once = child(0).count(op.col) != 0 || at_most_one(0);
      } else {
        left_once = at_most_one(1);
        right_once = at_most_one(0);
      }
      if (left_once) inherit(child(0));
      if (right_once) inherit(child(1));
      break;
    }
    case OpKind::kUnion: {
      // Cross-branch value reasoning is out of scope; only a statically
      // empty branch preserves the other branch's keys.
      if (cards->Get(op.children[0]).max == 0) {
        inherit(child(1));
      } else if (cards->Get(op.children[1]).max == 0) {
        inherit(child(0));
      }
      break;
    }
    case OpKind::kRowNum:
      inherit(child(0));
      // A dense numbering over the whole table identifies rows; within
      // partitions it repeats across groups.
      if (op.part == kNoCol) out.insert(op.col);
      break;
    case OpKind::kRowId:
      inherit(child(0));
      out.insert(op.col);
      break;
    case OpKind::kFun:
      inherit(child(0));
      break;
    case OpKind::kAggr:
      if (op.part != kNoCol) out.insert(op.part);  // one row per group
      break;
    case OpKind::kStep:
      // Document structure: every node has exactly one parent, at most
      // one attribute of a given name, and belongs to exactly one
      // element's attribute list.
      switch (op.axis) {
        case Axis::kSelf:  // a row subset of the (iter, item) context
          inherit(child(0));
          break;
        case Axis::kParent:  // at most one output row per context row
          if (child(0).count(col::iter()) != 0) out.insert(col::iter());
          break;
        case Axis::kChild:  // distinct parents have disjoint children
          if (child(0).count(col::item()) != 0) out.insert(col::item());
          break;
        case Axis::kAttribute:
          // Attributes of distinct elements are distinct nodes; a name
          // test additionally caps the fan-out at one row per context.
          if (child(0).count(col::item()) != 0) out.insert(col::item());
          if (op.test.kind == NodeTest::Kind::kName &&
              child(0).count(col::iter()) != 0) {
            out.insert(col::iter());
          }
          break;
        default:
          // Descendant/ancestor/sibling subtrees of distinct context
          // nodes can overlap: no keys survive.
          break;
      }
      break;
    case OpKind::kRange:
      break;
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode:
      if (child(1).count(col::iter()) != 0) out.insert(col::iter());
      out.insert(col::item());  // distinct node identities
      break;
    case OpKind::kDoc:
      break;  // single-row saturation below covers it
  }
  // Everything is a key of a relation with at most one row.
  if (cards->Get(id).max <= 1) {
    for (ColId c : op.schema) out.insert(c);
  }
  return out;
}

const ColSet& KeyTracker::Get(OpId id) { return engine_.Get(id); }

// ---------------------------------------------------------------------------
// Semantic types.
// ---------------------------------------------------------------------------

const char* ItemKindName(ItemKind kind) {
  switch (kind) {
    case ItemKind::kInt:
      return "int";
    case ItemKind::kNumeric:
      return "numeric";
    case ItemKind::kString:
      return "string";
    case ItemKind::kBool:
      return "bool";
    case ItemKind::kNode:
      return "node";
    case ItemKind::kAny:
      return "any";
  }
  return "?";
}

bool KindLe(ItemKind a, ItemKind b) {
  if (a == b || b == ItemKind::kAny) return true;
  return a == ItemKind::kInt && b == ItemKind::kNumeric;
}

ItemKind KindJoin(ItemKind a, ItemKind b) {
  if (KindLe(a, b)) return b;
  if (KindLe(b, a)) return a;
  return ItemKind::kAny;
}

ItemKind SemType::KindOf(ColId c) const {
  auto it = kinds.find(c);
  return it == kinds.end() ? ItemKind::kAny : it->second;
}

namespace {

// The static kind of one literal value. kUntyped compares in
// OrderCompare's string class (engine/value.cc), hence kString.
ItemKind KindOfValue(const Value& v) {
  switch (v.kind) {
    case ValueKind::kInt:
      return ItemKind::kInt;
    case ValueKind::kDouble:
      return ItemKind::kNumeric;
    case ValueKind::kString:
    case ValueKind::kUntyped:
      return ItemKind::kString;
    case ValueKind::kBool:
      return ItemKind::kBool;
    case ValueKind::kNode:
      return ItemKind::kNode;
  }
  return ItemKind::kAny;
}

// The kind of a ⊕ result, given the kind of its first argument.
ItemKind KindOfFun(FunKind fun, ItemKind arg0) {
  switch (fun) {
    case FunKind::kIDiv:
    case FunKind::kStringLength:
      return ItemKind::kInt;
    case FunKind::kAdd:
    case FunKind::kSub:
    case FunKind::kMul:
    case FunKind::kDiv:
    case FunKind::kMod:
    case FunKind::kNeg:
    case FunKind::kToDouble:
    case FunKind::kAbs:
    case FunKind::kFloor:
    case FunKind::kCeiling:
    case FunKind::kRound:
      return ItemKind::kNumeric;
    case FunKind::kEq:
    case FunKind::kNe:
    case FunKind::kLt:
    case FunKind::kLe:
    case FunKind::kGt:
    case FunKind::kGe:
    case FunKind::kNodeBefore:
    case FunKind::kNodeAfter:
    case FunKind::kNodeIs:
    case FunKind::kAnd:
    case FunKind::kOr:
    case FunKind::kNot:
    case FunKind::kContains:
    case FunKind::kStartsWith:
    case FunKind::kEndsWith:
      return ItemKind::kBool;
    case FunKind::kToString:
    case FunKind::kConcat:
    case FunKind::kUpperCase:
    case FunKind::kLowerCase:
    case FunKind::kNormalizeSpace:
    case FunKind::kSubstring2:
    case FunKind::kSubstring3:
    case FunKind::kNodeName:
      return ItemKind::kString;
    case FunKind::kAtomize:
      // Atomics pass through unchanged; nodes atomize to untypedAtomic,
      // which lives in the string order class.
      if (arg0 == ItemKind::kNode) return ItemKind::kString;
      if (arg0 == ItemKind::kAny) return ItemKind::kAny;
      return arg0;
  }
  return ItemKind::kAny;
}

}  // namespace

SemType SemTypeAnalysis::Bottom(const Dag&, OpId) const { return {}; }

bool SemTypeAnalysis::Join(SemType* into, const SemType& from) const {
  bool changed = false;
  for (const auto& [c, k] : from.kinds) {
    auto it = into->kinds.find(c);
    if (it == into->kinds.end()) {
      into->kinds.emplace(c, k);
      changed = true;
    } else if (it->second != k) {
      ItemKind widened = KindJoin(it->second, k);
      if (widened != it->second) {
        it->second = widened;
        changed = true;
      }
    }
  }
  for (ColId c : from.unit_groups) {
    changed |= into->unit_groups.insert(c).second;
  }
  return changed;
}

SemType SemTypeAnalysis::Transfer(const Dag& dag, OpId id,
                                  const std::vector<const SemType*>& in) const {
  const Op& op = dag.op(id);
  auto child = [&](size_t i) -> const SemType& { return *in[i]; };
  SemType out;
  auto inherit = [&](const SemType& t) {
    for (const auto& [c, k] : t.kinds) {
      if (op.HasCol(c)) out.kinds.emplace(c, k);
    }
    for (ColId c : t.unit_groups) {
      if (op.HasCol(c)) out.unit_groups.insert(c);
    }
  };
  auto inherit_kinds = [&](const SemType& t) {
    for (const auto& [c, k] : t.kinds) {
      if (op.HasCol(c)) out.kinds.emplace(c, k);
    }
  };

  switch (op.kind) {
    case OpKind::kLit: {
      for (size_t i = 0; i < op.lit.cols.size(); ++i) {
        if (op.lit.rows.empty()) continue;
        ItemKind k = KindOfValue(op.lit.rows[0][i]);
        for (size_t r = 1; r < op.lit.rows.size() && k != ItemKind::kAny;
             ++r) {
          k = KindJoin(k, KindOfValue(op.lit.rows[r][i]));
        }
        if (k != ItemKind::kAny) out.kinds.emplace(op.lit.cols[i], k);
      }
      break;
    }
    case OpKind::kProject: {
      const SemType& t = child(0);
      for (const auto& [n, o] : op.proj) {
        ItemKind k = t.KindOf(o);
        if (k != ItemKind::kAny) out.kinds.emplace(n, k);
        if (t.unit_groups.count(o) != 0) out.unit_groups.insert(n);
      }
      break;
    }
    // Row subsets: both kinds and duplicate-freedom survive.
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
      inherit(child(0));
      break;
    case OpKind::kCardCheck:
      inherit(child(0));
      // The new source of unit groups: once the per-iteration assertion
      // has passed, every iteration holds at most max_card rows — for
      // fn:zero-or-one / fn:exactly-one that makes iter duplicate-free.
      // (Relies on the compiler invariant that the checked relation's
      // iterations all stem from the loop relation, child 1.)
      if (op.max_card <= 1) out.unit_groups.insert(col::iter());
      break;
    case OpKind::kRowNum:
      inherit(child(0));
      out.kinds[op.col] = ItemKind::kInt;
      if (op.part == kNoCol) out.unit_groups.insert(op.col);
      break;
    case OpKind::kRowId:
      inherit(child(0));
      out.kinds[op.col] = ItemKind::kInt;
      out.unit_groups.insert(op.col);
      break;
    case OpKind::kFun: {
      inherit(child(0));
      out.unit_groups.erase(op.col);
      ItemKind arg0 = op.args.empty() ? ItemKind::kAny
                                      : child(0).KindOf(op.args[0]);
      ItemKind k = KindOfFun(op.fun, arg0);
      if (k != ItemKind::kAny) {
        out.kinds[op.col] = k;
      } else {
        out.kinds.erase(op.col);
      }
      break;
    }
    case OpKind::kAggr: {
      const SemType& t = child(0);
      if (op.part != kNoCol) {
        ItemKind pk = t.KindOf(op.part);
        if (pk != ItemKind::kAny) out.kinds.emplace(op.part, pk);
        out.unit_groups.insert(op.part);  // one row per group
      }
      ItemKind k = ItemKind::kAny;
      switch (op.aggr) {
        case AggrKind::kCount:
          k = ItemKind::kInt;
          break;
        case AggrKind::kSum:
        case AggrKind::kAvg:
          k = ItemKind::kNumeric;
          break;
        case AggrKind::kMin:
        case AggrKind::kMax: {
          ItemKind ak = t.KindOf(op.col2);
          if (ak != ItemKind::kNode) k = ak;  // nodes atomize first
          break;
        }
        case AggrKind::kEbv:
          k = ItemKind::kBool;
          break;
        case AggrKind::kStrJoin:
          k = ItemKind::kString;
          break;
      }
      if (k != ItemKind::kAny) out.kinds[op.col] = k;
      break;
    }
    case OpKind::kStep: {
      ItemKind ik = child(0).KindOf(col::iter());
      if (ik != ItemKind::kAny) out.kinds.emplace(col::iter(), ik);
      out.kinds[col::item()] = ItemKind::kNode;
      break;
    }
    case OpKind::kRange: {
      ItemKind ik = child(0).KindOf(col::iter());
      if (ik != ItemKind::kAny) out.kinds.emplace(col::iter(), ik);
      out.kinds[col::item()] = ItemKind::kInt;
      break;
    }
    case OpKind::kDoc:
      out.kinds[col::item()] = ItemKind::kNode;
      break;
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode: {
      ItemKind ik = child(1).KindOf(col::iter());
      if (ik != ItemKind::kAny) out.kinds.emplace(col::iter(), ik);
      out.kinds[col::item()] = ItemKind::kNode;
      break;
    }
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin:
    case OpKind::kCross: {
      inherit_kinds(child(0));
      inherit_kinds(child(1));
      // A side's duplicate-free columns stay duplicate-free when the
      // other side contributes at most one row (value-based conditions
      // belong to the key domain; the two compose in the rewriter).
      if (cards->Get(op.children[1]).max <= 1) {
        for (ColId c : child(0).unit_groups) {
          if (op.HasCol(c)) out.unit_groups.insert(c);
        }
      }
      if (cards->Get(op.children[0]).max <= 1) {
        for (ColId c : child(1).unit_groups) {
          if (op.HasCol(c)) out.unit_groups.insert(c);
        }
      }
      break;
    }
    case OpKind::kUnion: {
      const SemType& a = child(0);
      const SemType& b = child(1);
      for (const auto& [c, k] : a.kinds) {
        if (!op.HasCol(c)) continue;
        ItemKind j = KindJoin(k, b.KindOf(c));
        if (j != ItemKind::kAny) out.kinds.emplace(c, j);
      }
      if (cards->Get(op.children[0]).max == 0) {
        for (const auto& [c, k] : b.kinds) {
          if (op.HasCol(c)) out.kinds.emplace(c, k);
        }
        for (ColId c : b.unit_groups) {
          if (op.HasCol(c)) out.unit_groups.insert(c);
        }
      } else if (cards->Get(op.children[1]).max == 0) {
        for (ColId c : a.unit_groups) {
          if (op.HasCol(c)) out.unit_groups.insert(c);
        }
      }
      break;
    }
  }
  // Every column of an at-most-one-row relation is trivially
  // duplicate-free.
  if (cards->Get(id).max <= 1) {
    for (ColId c : op.schema) out.unit_groups.insert(c);
  }
  return out;
}

const SemType& SemTypeTracker::Get(OpId id) { return engine_.Get(id); }

// ---------------------------------------------------------------------------
// Order dependencies.
// ---------------------------------------------------------------------------

namespace {

// Caps keeping the fact sets small: at most this many facts per
// operator, each with at most this many sort keys.
constexpr size_t kMaxOrderFacts = 6;
constexpr size_t kMaxOrderKeys = 4;

// F logically implies G: rows sorted (and possibly duplicate-free) the
// way F says are necessarily sorted the way G says.
bool FactImplies(const OrderFact& f, const OrderFact& g) {
  bool f_prefix_of_g =
      f.keys.size() <= g.keys.size() &&
      std::equal(f.keys.begin(), f.keys.end(), g.keys.begin());
  // A fully strict prefix leaves no ties: any extension holds, strictly.
  if (f_prefix_of_g && f.strict) return true;
  bool g_prefix_of_f =
      g.keys.size() <= f.keys.size() &&
      std::equal(g.keys.begin(), g.keys.end(), f.keys.begin());
  // Sorted by a longer list implies sorted by any prefix (non-strictly).
  return g_prefix_of_f && !g.strict;
}

// Normalizes (dropping repeated columns, capping the key count) and
// inserts `f` unless an existing fact already implies it; drops existing
// facts the new one implies. Deterministic first-come eviction keeps the
// set bounded.
void AddOrderFact(std::vector<OrderFact>* facts, OrderFact f) {
  std::vector<SortKey> keys;
  for (const SortKey& k : f.keys) {
    bool dup = false;
    for (const SortKey& seen : keys) {
      if (seen.col == k.col) {
        dup = true;  // sorting again by an earlier key is a no-op
        break;
      }
    }
    if (!dup) keys.push_back(k);
  }
  if (keys.size() > kMaxOrderKeys) {
    keys.resize(kMaxOrderKeys);
    f.strict = false;  // strictness spoke about the full prefix
  }
  f.keys = std::move(keys);
  if (f.keys.empty()) return;
  for (const OrderFact& have : *facts) {
    if (FactImplies(have, f)) return;
  }
  facts->erase(std::remove_if(facts->begin(), facts->end(),
                              [&](const OrderFact& have) {
                                return FactImplies(f, have);
                              }),
               facts->end());
  if (facts->size() >= kMaxOrderFacts) return;
  facts->push_back(std::move(f));
}

}  // namespace

std::string OrderFact::ToString() const {
  std::string out = "<";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i != 0) out += ",";
    out += ColName(keys[i].col);
    if (keys[i].descending) out += " desc";
  }
  out += ">";
  if (strict) out += "!";
  return out;
}

std::string OrderFacts::ToString() const {
  std::string out;
  for (const OrderFact& f : facts) {
    if (!out.empty()) out += " ";
    out += f.ToString();
  }
  return out;
}

bool OrderImplied(const std::vector<OrderFact>& facts, const ColSet& constants,
                  const ColSet& keys, bool at_most_one,
                  const std::vector<SortKey>& requested) {
  if (at_most_one) return true;  // one row is sorted every way
  // Criteria over constant columns tie on every row: skippable.
  std::vector<SortKey> want;
  for (const SortKey& k : requested) {
    if (constants.count(k.col) == 0) want.push_back(k);
  }
  if (want.empty()) return true;
  for (const OrderFact& f : facts) {
    size_t qi = 0;
    size_t fi = 0;
    bool covered = false;
    while (true) {
      if (qi == want.size()) {
        covered = true;
        break;
      }
      // Constant fact keys tie on every row too; the remaining keys
      // still describe the physical order exactly.
      while (fi < f.keys.size() && constants.count(f.keys[fi].col) != 0) {
        ++fi;
      }
      if (fi == f.keys.size()) {
        // Fact exhausted with requested keys left: only a duplicate-free
        // consumed prefix pins the remaining order (no ties to break).
        covered = f.strict;
        break;
      }
      if (f.keys[fi].col != want[qi].col ||
          f.keys[fi].descending != want[qi].descending) {
        break;
      }
      if (keys.count(want[qi].col) != 0) {
        covered = true;  // duplicate-free key: later criteria never fire
        break;
      }
      ++qi;
      ++fi;
    }
    if (covered) return true;
  }
  return false;
}

OrderFacts OrderAnalysis::Bottom(const Dag&, OpId) const { return {}; }

bool OrderAnalysis::Join(OrderFacts* into, const OrderFacts& from) const {
  bool changed = false;
  for (const OrderFact& f : from.facts) {
    std::vector<OrderFact> before = into->facts;
    AddOrderFact(&into->facts, f);
    changed |= into->facts != before;
  }
  return changed;
}

OrderFacts OrderAnalysis::Transfer(
    const Dag& dag, OpId id, const std::vector<const OrderFacts*>& in) const {
  const Op& op = dag.op(id);
  auto child = [&](size_t i) -> const OrderFacts& { return *in[i]; };
  OrderFacts out;
  auto add = [&](OrderFact f) { AddOrderFact(&out.facts, std::move(f)); };
  // A child fact survives an op that keeps the surviving rows in their
  // relative order; keys the op's schema no longer carries truncate the
  // fact (losing strictness with them).
  auto inherit = [&](const OrderFacts& f) {
    for (const OrderFact& fact : f.facts) {
      OrderFact g;
      for (const SortKey& k : fact.keys) {
        if (!op.HasCol(k.col)) break;
        g.keys.push_back(k);
      }
      if (g.keys.empty()) continue;
      g.strict = fact.strict && g.keys.size() == fact.keys.size();
      add(std::move(g));
    }
  };

  switch (op.kind) {
    case OpKind::kLit: {
      // Literal tables with statically sorted integer columns (value
      // classes beyond xs:integer would need the engine's comparator).
      for (size_t i = 0; i < op.lit.cols.size(); ++i) {
        bool ints = true;
        bool asc = true;
        bool desc = true;
        bool strict_asc = true;
        bool strict_desc = true;
        for (size_t r = 0; r < op.lit.rows.size() && ints; ++r) {
          if (op.lit.rows[r][i].kind != ValueKind::kInt) ints = false;
        }
        if (!ints) continue;
        for (size_t r = 1; r < op.lit.rows.size(); ++r) {
          int64_t a = op.lit.rows[r - 1][i].i;
          int64_t b = op.lit.rows[r][i].i;
          if (a > b) asc = strict_asc = false;
          if (a < b) desc = strict_desc = false;
          if (a == b) strict_asc = strict_desc = false;
        }
        if (asc) {
          add({{{op.lit.cols[i], false}}, strict_asc});
        } else if (desc) {
          add({{{op.lit.cols[i], true}}, strict_desc});
        }
      }
      break;
    }
    case OpKind::kProject: {
      // Rename fact keys; a dropped key truncates the fact. A column
      // projected under several names yields the first alias (caps keep
      // the expansion linear).
      for (const OrderFact& fact : child(0).facts) {
        OrderFact g;
        bool complete = true;
        for (const SortKey& k : fact.keys) {
          ColId renamed = kNoCol;
          for (const auto& [n, o] : op.proj) {
            if (o == k.col) {
              renamed = n;
              break;
            }
          }
          if (renamed == kNoCol) {
            complete = false;
            break;
          }
          g.keys.push_back({renamed, k.descending});
        }
        if (g.keys.empty()) continue;
        g.strict = fact.strict && complete;
        add(std::move(g));
      }
      break;
    }
    // Row subsets preserve relative order; so do per-row extensions.
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
    case OpKind::kCardCheck:
      inherit(child(0));
      break;
    case OpKind::kRowNum: {
      inherit(child(0));
      // % keeps the physical row order (ranks are written back into the
      // input's row slots). When the requested order is one the input
      // already realizes, the stable sort is the identity and the ranks
      // are 1..n in physical order: a strictly ascending column.
      OpId c = op.children[0];
      bool part_skippable =
          op.part == kNoCol ||
          props->Get(c).constant.count(op.part) != 0;
      if (part_skippable &&
          OrderImplied(child(0).facts, props->Get(c).constant,
                       keys->Get(c), cards->Get(c).max <= 1, op.order)) {
        add({{{op.col, false}}, true});
      }
      break;
    }
    case OpKind::kRowId:
      inherit(child(0));
      // # assigns r+1 to physical row r: strictly ascending by
      // construction, whether the ids are positional or arbitrary.
      add({{{op.col, false}}, true});
      break;
    case OpKind::kFun: {
      inherit(child(0));
      // Monotone ⊕ maps transfer sortedness through the function: for a
      // fact sorted by [..., arg, ...], the image column sorts the same
      // way (order-isomorphic maps keep the tail and strictness; merely
      // monotone ones truncate, since ties in the image hide order).
      // All edges require a statically numeric argument: OrderCompare
      // is type-class-major, so e.g. number("10") < number("9") while
      // "10" < "9" — monotonicity only holds inside the numeric class.
      if (op.args.size() == 1 &&
          KindIsNumeric(sem->Get(op.children[0]).KindOf(op.args[0]))) {
        enum class MapKind { kNone, kIso, kMono, kAnti };
        MapKind map = MapKind::kNone;
        switch (op.fun) {
          case FunKind::kToDouble:
            map = MapKind::kIso;  // numeric identity under OrderCompare
            break;
          case FunKind::kFloor:
          case FunKind::kCeiling:
          case FunKind::kRound:
            map = MapKind::kMono;  // monotone, but collapses ties
            break;
          case FunKind::kNeg:
            map = MapKind::kAnti;  // strictly antitone
            break;
          default:
            break;
        }
        if (map != MapKind::kNone) {
          ColId arg = op.args[0];
          for (const OrderFact& fact : child(0).facts) {
            for (size_t i = 0; i < fact.keys.size(); ++i) {
              if (fact.keys[i].col != arg) continue;
              OrderFact g = fact;
              g.keys[i].col = op.col;
              if (map == MapKind::kAnti) {
                g.keys[i].descending = !g.keys[i].descending;
              }
              if (map == MapKind::kMono) {
                g.keys.resize(i + 1);
                g.strict = false;
              }
              add(std::move(g));
            }
          }
        }
      }
      break;
    }
    case OpKind::kAggr:
      if (op.part != kNoCol) {
        // Groups are emitted in first-appearance order: an input sorted
        // by the partition column lists each group contiguously, so the
        // output (one row per group) is sorted — and duplicate-free —
        // by it.
        for (const OrderFact& fact : child(0).facts) {
          if (!fact.keys.empty() && fact.keys[0].col == op.part) {
            add({{fact.keys[0]}, true});
          }
        }
      }
      break;
    case OpKind::kStep:
      // Steps sort and de-duplicate their output globally by (iter,
      // item) — the context-order/document-order contract (engine).
      add({{{col::iter(), false}, {col::item(), false}}, true});
      break;
    case OpKind::kRange:
      // Row-major expansion: each input row emits its items in
      // ascending order.
      for (const OrderFact& fact : child(0).facts) {
        if (fact.keys[0].col != col::iter()) continue;
        if (fact.keys.size() == 1 && fact.strict) {
          add({{fact.keys[0], {col::item(), false}}, true});
        } else {
          add({{fact.keys[0]}, false});
        }
      }
      break;
    case OpKind::kCross: {
      // Left-major: the output enumerates left rows in order, each
      // paired with every right row in order.
      uint64_t left_max = cards->Get(op.children[0]).max;
      uint64_t right_max = cards->Get(op.children[1]).max;
      for (const OrderFact& f : child(0).facts) {
        add({f.keys, f.strict && right_max <= 1});
        if (f.strict) {
          // A strict left prefix makes the concatenation sorted: ties
          // on the left keys happen only within one left row's block.
          for (const OrderFact& g : child(1).facts) {
            OrderFact cat;
            cat.keys = f.keys;
            cat.keys.insert(cat.keys.end(), g.keys.begin(), g.keys.end());
            cat.strict = g.strict;
            add(std::move(cat));
          }
        }
      }
      if (left_max <= 1) {
        for (const OrderFact& g : child(1).facts) add(g);
      }
      break;
    }
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin: {
      // The engine picks the equi-join build side at run time (the
      // smaller input), so only a statically at-most-one-row far side
      // guarantees the output is a subsequence of the near side: either
      // the near side is the probe (order preserved), or it is smaller
      // than a <=1-row relation, i.e. empty. ThetaJoin probes the left
      // side but may emit per-probe matches in build-value order, so the
      // same conservative rule applies.
      if (cards->Get(op.children[1]).max <= 1) {
        for (const OrderFact& f : child(0).facts) add(f);
      }
      if (cards->Get(op.children[0]).max <= 1) {
        for (const OrderFact& g : child(1).facts) add(g);
      }
      break;
    }
    case OpKind::kUnion:
      // Append: facts survive only when one branch is statically empty
      // (the boundary value is unknown otherwise).
      if (cards->Get(op.children[0]).max == 0) {
        inherit(child(1));
      } else if (cards->Get(op.children[1]).max == 0) {
        inherit(child(0));
      }
      break;
    case OpKind::kDoc:
      // Single row: OrderImplied's at-most-one case covers it.
      break;
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode:
      // Constructor output order is an engine detail we leave opaque.
      break;
  }
  return out;
}

const OrderFacts& OrderTracker::Get(OpId id) { return engine_.Get(id); }

bool OrderTracker::Covers(OpId id, const std::vector<SortKey>& requested) {
  return OrderImplied(Get(id).facts, props_->Get(id).constant,
                      keys_->Get(id), cards_->Get(id).max <= 1, requested);
}

// ---------------------------------------------------------------------------
// Error capability.
// ---------------------------------------------------------------------------

bool RaiseAnalysis::Bottom(const Dag&, OpId) const { return false; }

bool RaiseAnalysis::Join(bool* into, const bool& from) const {
  if (from && !*into) {
    *into = true;
    return true;
  }
  return false;
}

bool RaiseAnalysis::Transfer(const Dag& dag, OpId id,
                             const std::vector<const bool*>& in) const {
  for (const bool* c : in) {
    if (*c) return true;
  }
  const Op& op = dag.op(id);
  switch (op.kind) {
    case OpKind::kDoc:
      return true;  // unknown document name
    case OpKind::kCardCheck:
      return true;  // can fire even on an empty input (min_card > 0)
    case OpKind::kRange:
      // Non-integer or oversized bounds — per input row.
      return cards->Get(op.children[0]).max > 0;
    case OpKind::kFun:
      // Casts, arithmetic on non-numerics, division by zero,
      // incomparable comparisons — all per input row. Treating every
      // function as error-capable is conservative but only ever blocks
      // a rewrite.
      return cards->Get(op.children[0]).max > 0;
    case OpKind::kThetaJoin:
      // The comparison raises on incomparable pairs — only when pairs
      // can exist at all.
      return cards->Get(op.children[0]).max > 0 &&
             cards->Get(op.children[1]).max > 0;
    case OpKind::kAggr:
      switch (op.aggr) {
        case AggrKind::kSum:
        case AggrKind::kMax:
        case AggrKind::kMin:
        case AggrKind::kAvg:
          return true;  // type errors; avg/min/max of an empty group
        default:
          return false;
      }
    default:
      return false;
  }
}

bool RaiseTracker::Get(OpId id) { return engine_.Get(id); }

// ---------------------------------------------------------------------------
// Order provenance.
// ---------------------------------------------------------------------------

namespace {

// Classifies the internal consumption of a column by `consumer` as a
// human-readable reason, carrying the consumer's source expression.
std::string ReasonLabel(const Dag& dag, OpId consumer,
                        const StrPool* strings) {
  const Op& op = dag.op(consumer);
  std::string what;
  auto named = [&](StrId s) {
    return strings != nullptr ? strings->Get(s) : std::string("?");
  };
  switch (op.kind) {
    case OpKind::kRowNum:
      what = "sort/grouping criteria of % (row numbering)";
      break;
    case OpKind::kSelect:
      what = "row filter";
      break;
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin:
      what = "join condition";
      break;
    case OpKind::kDifference:
      what = "anti-join keys";
      break;
    case OpKind::kSemiJoin:
      what = "semi-join keys";
      break;
    case OpKind::kDistinct:
      what = "duplicate elimination";
      break;
    case OpKind::kFun:
      what = std::string("argument of ") + FunKindName(op.fun);
      break;
    case OpKind::kAggr:
      if (op.aggr == AggrKind::kStrJoin && !op.keys.empty()) {
        what = "order-sensitive aggregation (string-join)";
      } else {
        what = std::string("aggregation ") + AggrKindName(op.aggr);
      }
      break;
    case OpKind::kStep:
      what = std::string("location step context (") + AxisName(op.axis) +
             (strings != nullptr
                  ? "::" + NodeTestToString(op.test, *strings)
                  : std::string()) +
             ")";
      break;
    case OpKind::kElem:
      what = "element constructor <" + named(op.name) +
             "> (content in sequence order)";
      break;
    case OpKind::kAttr:
      what = "attribute constructor @" + named(op.name);
      break;
    case OpKind::kTextNode:
      what = "text node constructor (content in sequence order)";
      break;
    case OpKind::kRange:
      what = "range bounds ('to')";
      break;
    case OpKind::kCardCheck:
      what = "cardinality check fn:" + named(op.name);
      break;
    default:
      what = std::string("consumed by ") + OpKindName(op.kind);
      break;
  }
  if (!op.prov.empty()) what += " -- " + op.prov;
  return what;
}

// Mirrors LivenessAnalysis edge-for-edge, attaching a reason wherever a
// column is consumed by the operator itself (need) and copying reasons
// wherever demand merely passes through (need_set / Project). Because
// every inserted column carries at least one reason, the demanded
// column sets coincide exactly with ComputeICols — which the verifier
// checks.
struct ProvenanceAnalysis {
  using Fact = std::map<ColId, std::set<uint32_t>>;

  const Dag* dag = nullptr;
  const StrPool* strings = nullptr;
  std::vector<OrderReason>* reasons = nullptr;
  std::map<OpId, uint32_t>* intern = nullptr;

  uint32_t Reason(OpId consumer) const {
    auto it = intern->find(consumer);
    if (it != intern->end()) return it->second;
    uint32_t id = static_cast<uint32_t>(reasons->size());
    reasons->push_back({consumer, ReasonLabel(*dag, consumer, strings)});
    intern->emplace(consumer, id);
    return id;
  }

  Fact Bottom(const Dag&, OpId) const { return {}; }

  bool Join(Fact* into, const Fact& from) const {
    bool changed = false;
    for (const auto& [c, rs] : from) {
      std::set<uint32_t>& dst = (*into)[c];
      for (uint32_t r : rs) changed |= dst.insert(r).second;
    }
    return changed;
  }

  void Transfer(const Dag& dg, OpId id, const Fact& r,
                std::vector<Fact>* out) const {
    const Op& op = dg.op(id);
    auto need = [&](size_t child, ColId c) {
      if (c == kNoCol) return;
      (*out)[child][c].insert(Reason(id));
    };
    auto pass = [&](size_t child, const Fact& f) {
      const Op& ch = dg.op(op.children[child]);
      for (const auto& [c, rs] : f) {
        if (ch.HasCol(c)) (*out)[child][c].insert(rs.begin(), rs.end());
      }
    };

    switch (op.kind) {
      case OpKind::kLit:
      case OpKind::kDoc:
        break;
      case OpKind::kProject:
        for (const auto& [n, o] : op.proj) {
          auto it = r.find(n);
          if (it != r.end()) {
            (*out)[0][o].insert(it->second.begin(), it->second.end());
          }
        }
        break;
      case OpKind::kSelect:
        pass(0, r);
        need(0, op.col);
        break;
      case OpKind::kEquiJoin:
      case OpKind::kThetaJoin:
        pass(0, r);
        pass(1, r);
        need(0, op.col);
        need(1, op.col2);
        break;
      case OpKind::kCross:
      case OpKind::kUnion:
        pass(0, r);
        pass(1, r);
        break;
      case OpKind::kDifference:
      case OpKind::kSemiJoin:
        pass(0, r);
        for (ColId k : op.keys) {
          need(0, k);
          need(1, k);
        }
        break;
      case OpKind::kDistinct:
        for (ColId c : dg.op(op.children[0]).schema) need(0, c);
        break;
      case OpKind::kRowNum: {
        Fact p = r;
        p.erase(op.col);
        pass(0, p);
        for (const SortKey& k : op.order) need(0, k.col);
        need(0, op.part);
        break;
      }
      case OpKind::kRowId: {
        Fact p = r;
        p.erase(op.col);
        pass(0, p);
        break;
      }
      case OpKind::kFun: {
        Fact p = r;
        p.erase(op.col);
        pass(0, p);
        for (ColId a : op.args) need(0, a);
        break;
      }
      case OpKind::kAggr:
        need(0, op.col2);
        need(0, op.part);
        for (ColId k : op.keys) need(0, k);
        break;
      case OpKind::kStep:
        need(0, col::iter());
        need(0, col::item());
        break;
      case OpKind::kElem:
      case OpKind::kAttr:
      case OpKind::kTextNode:
        need(0, col::iter());
        need(0, col::pos());
        need(0, col::item());
        need(1, col::iter());
        break;
      case OpKind::kRange:
        need(0, col::iter());
        need(0, op.col);
        need(0, op.col2);
        break;
      case OpKind::kCardCheck:
        pass(0, r);
        need(0, col::iter());
        need(1, col::iter());
        break;
    }
  }
};

}  // namespace

std::vector<std::string> OrderProvenance::ReasonsFor(OpId id,
                                                     ColId col) const {
  std::vector<std::string> out;
  auto it = demand.find(id);
  if (it == demand.end()) return out;
  auto cit = it->second.find(col);
  if (cit == it->second.end()) return out;
  for (uint32_t r : cit->second) {
    if (r < reasons.size()) out.push_back(reasons[r].label);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

OrderProvenance ComputeOrderProvenance(const Dag& dag, OpId root,
                                       const ColSet& seed,
                                       const StrPool* strings) {
  OrderProvenance out;
  std::map<OpId, uint32_t> intern;
  ProvenanceAnalysis analysis{&dag, strings, &out.reasons, &intern};
  // The root demand: the query result is serialized in sequence order.
  uint32_t serialize = static_cast<uint32_t>(out.reasons.size());
  out.reasons.push_back(
      {kNoOp, "result serialization (the query result is delivered in "
              "sequence order)"});
  ProvenanceAnalysis::Fact seed_fact;
  for (ColId c : seed) seed_fact[c].insert(serialize);
  BackwardDataflow<ProvenanceAnalysis> engine(&dag, analysis);
  out.demand = engine.Solve(root, seed_fact);
  return out;
}

std::map<OpId, std::vector<std::string>> ProvenanceAnnotations(
    const Dag& dag, OpId root, const OrderProvenance& prov) {
  std::map<OpId, std::vector<std::string>> out;
  for (OpId id : dag.ReachableFrom(root)) {
    const Op& op = dag.op(id);
    if (op.kind != OpKind::kRowNum) continue;
    std::vector<std::string> lines = prov.ReasonsFor(id, op.col);
    if (lines.empty()) {
      lines.push_back("rank never consumed (removable by column pruning)");
    }
    for (std::string& l : lines) l = "ordered because: " + l;
    out.emplace(id, std::move(lines));
  }
  return out;
}

}  // namespace exrquy
