// Column dependency analysis (Section 4.1, Figure 8): a top-down walk of
// the plan DAG infers the set of strictly required input columns of every
// operator, seeded at the root with {pos, item} (plus iter) — the columns
// needed to serialize the query result.
#ifndef EXRQUY_OPT_ICOLS_H_
#define EXRQUY_OPT_ICOLS_H_

#include <set>
#include <unordered_map>

#include "algebra/algebra.h"

namespace exrquy {

using ColSet = std::set<ColId>;

// Required (produced) columns per reachable operator. A column outside
// this set is never consumed upstream; operators producing only such
// columns may be simplified or pruned (rewrites.h).
std::unordered_map<OpId, ColSet> ComputeICols(const Dag& dag, OpId root,
                                              const ColSet& seed);

// Row-level counterpart of the column liveness above: how many times each
// reachable operator's result is consumed. Counts one per parent edge
// (an operator appearing twice among a parent's children counts twice),
// plus one for the root, whose table outlives evaluation. When the
// engine has evaluated the last consumer of a memoized intermediate, the
// entry is dead and its table can be released — peak memory becomes the
// live frontier of the DAG rather than the sum of all intermediates.
std::unordered_map<OpId, uint32_t> ConsumerCounts(const Dag& dag, OpId root);

}  // namespace exrquy

#endif  // EXRQUY_OPT_ICOLS_H_
