#include "opt/pipeline.h"

namespace exrquy {

OpId Optimize(Dag* dag, OpId root, const OptimizeOptions& options) {
  if (!options.enable) return root;
  OpId current = root;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool changed = false;
    current = RewriteOnce(dag, current, options.rewrites, &changed);
    if (!changed) break;
  }
  return current;
}

}  // namespace exrquy
