# Empty compiler generated dependencies file for exrquy_sql.
# This may be replaced when dependencies are built.
