// Lightweight assertion macros. The library does not use exceptions;
// violated invariants are programming errors and abort the process with a
// source location, mirroring the CHECK idiom of large database codebases.
#ifndef EXRQUY_COMMON_CHECK_H_
#define EXRQUY_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace exrquy {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace internal_check
}  // namespace exrquy

#define EXRQUY_CHECK(expr)                                               \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::exrquy::internal_check::CheckFailed(#expr, __FILE__, __LINE__);  \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define EXRQUY_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define EXRQUY_DCHECK(expr) EXRQUY_CHECK(expr)
#endif

#endif  // EXRQUY_COMMON_CHECK_H_
