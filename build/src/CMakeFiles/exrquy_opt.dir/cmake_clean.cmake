file(REMOVE_RECURSE
  "CMakeFiles/exrquy_opt.dir/opt/icols.cc.o"
  "CMakeFiles/exrquy_opt.dir/opt/icols.cc.o.d"
  "CMakeFiles/exrquy_opt.dir/opt/pipeline.cc.o"
  "CMakeFiles/exrquy_opt.dir/opt/pipeline.cc.o.d"
  "CMakeFiles/exrquy_opt.dir/opt/properties.cc.o"
  "CMakeFiles/exrquy_opt.dir/opt/properties.cc.o.d"
  "CMakeFiles/exrquy_opt.dir/opt/rewrites.cc.o"
  "CMakeFiles/exrquy_opt.dir/opt/rewrites.cc.o.d"
  "libexrquy_opt.a"
  "libexrquy_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exrquy_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
