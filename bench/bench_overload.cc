// Overload experiment for the admission-controlled query service
// (api/service.h): offered load at 1x, 4x and 16x the worker count,
// with the resilience layer on (bounded queue + queue timeout) and off
// (unbounded blocking queue, the pre-admission behavior). For each cell:
// completed throughput, shed rate, and p50/p99 end-to-end latency from
// the service's own histogram — the numbers that show shedding is what
// keeps tail latency flat when the arrival rate exceeds capacity.
// Dumped as a table and as BENCH_overload.json:
//
//   { "bench": "overload",
//     "scale": s, "doc_bytes": N, "workers": W, "duration_ms": D,
//     "loads": [ {"multiplier": m, "clients": c,
//                 "resilient": {"ok": n, "shed": n, "shed_rate": r,
//                               "throughput_qps": q,
//                               "p50_us": t, "p99_us": t},
//                 "unbounded": { ... same ... }}, ... ] }
//
// EXRQUY_BENCH_SCALE overrides the document scale;
// EXRQUY_BENCH_WORKERS the worker-slot count (default 2);
// EXRQUY_BENCH_DURATION_MS the per-cell wall clock (default 1000).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "bench/bench_util.h"

namespace exrquy {
namespace {

using Clock = std::chrono::steady_clock;

struct CellResult {
  uint64_t ok = 0;
  uint64_t shed = 0;
  double elapsed_ms = 0;
  double p50_us = 0;
  double p99_us = 0;

  double shed_rate() const {
    uint64_t total = ok + shed;
    return total == 0 ? 0 : static_cast<double>(shed) /
                                static_cast<double>(total);
  }
  double throughput_qps() const {
    return elapsed_ms <= 0 ? 0 : 1000.0 * static_cast<double>(ok) /
                                     elapsed_ms;
  }
};

CellResult RunCell(const std::string& xml, size_t workers, size_t clients,
                   bool resilient, int64_t duration_ms) {
  ServiceConfig config;
  config.workers = workers;
  config.plan_cache = 1;
  config.result_cache_bytes = 0;  // every request exercises a worker
  if (resilient) {
    config.max_queue_depth = static_cast<int64_t>(2 * workers);
    config.queue_timeout_ms = 50;
  } else {
    // Pre-admission behavior: an effectively unbounded queue, block
    // however long it takes.
    config.max_queue_depth = int64_t{1} << 40;
    config.queue_timeout_ms = 0;
  }
  QueryService service(config);
  if (!service.LoadDocument("auction.xml", xml).ok()) {
    std::fprintf(stderr, "load failed\n");
    std::exit(1);
  }
  const std::string query = XMarkQueryText("Q1");
  // Warm the plan cache so the measurement window is execute-only.
  if (!service.Execute(query, {}).ok()) {
    std::fprintf(stderr, "warmup failed\n");
    std::exit(1);
  }

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> errors{0};
  Clock::time_point t0 = Clock::now();
  Clock::time_point t_end = t0 + std::chrono::milliseconds(duration_ms);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      while (Clock::now() < t_end) {
        Result<ServiceResult> r = service.Execute(query, {});
        if (r.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().code() == StatusCode::kUnavailable) {
          shed.fetch_add(1, std::memory_order_relaxed);
          // A shed response tells the client to come back later; retry
          // after a beat, like a well-behaved caller, instead of
          // spinning on the admission gate.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - t0)
                          .count();
  if (errors.load() != 0) {
    std::fprintf(stderr, "unexpected non-shed errors: %llu\n",
                 static_cast<unsigned long long>(errors.load()));
    std::exit(1);
  }

  CellResult cell;
  cell.ok = ok.load();
  cell.shed = shed.load();
  cell.elapsed_ms = elapsed_ms;
  LatencyHistogram lat = service.counters().latency_us;
  cell.p50_us = lat.PercentileUs(50);
  cell.p99_us = lat.PercentileUs(99);
  return cell;
}

void Run() {
  double scale = bench::EnvScale("EXRQUY_BENCH_SCALE", 0.008);
  size_t workers =
      static_cast<size_t>(bench::EnvScale("EXRQUY_BENCH_WORKERS", 2));
  int64_t duration_ms = static_cast<int64_t>(
      bench::EnvScale("EXRQUY_BENCH_DURATION_MS", 1000));
  XMarkOptions xmark;
  xmark.scale = scale;
  std::string xml = GenerateXMark(xmark);

  std::printf(
      "Overload — XMark Q1, %.3f scale (%zu KB), %zu worker(s), "
      "%lld ms/cell\n\n",
      scale, xml.size() / 1024, workers,
      static_cast<long long>(duration_ms));
  std::printf("%-5s %-8s %-11s %10s %8s %10s %10s %10s\n", "load",
              "clients", "mode", "ok", "shed", "shed%", "p50 us", "p99 us");

  const size_t kMultipliers[] = {1, 4, 16};
  struct LoadRow {
    size_t multiplier;
    size_t clients;
    CellResult resilient;
    CellResult unbounded;
  };
  std::vector<LoadRow> rows;
  for (size_t m : kMultipliers) {
    LoadRow row;
    row.multiplier = m;
    row.clients = m * workers;
    for (bool resilient : {true, false}) {
      CellResult cell =
          RunCell(xml, workers, row.clients, resilient, duration_ms);
      (resilient ? row.resilient : row.unbounded) = cell;
      std::printf("%-5zu %-8zu %-11s %10llu %8llu %9.1f%% %10.0f %10.0f\n",
                  m, row.clients, resilient ? "resilient" : "unbounded",
                  static_cast<unsigned long long>(cell.ok),
                  static_cast<unsigned long long>(cell.shed),
                  100.0 * cell.shed_rate(), cell.p50_us, cell.p99_us);
    }
    rows.push_back(row);
  }

  std::FILE* out = std::fopen("BENCH_overload.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_overload.json\n");
    std::exit(1);
  }
  std::fprintf(out,
               "{\n  \"bench\": \"overload\",\n"
               "  \"scale\": %.4f,\n  \"doc_bytes\": %zu,\n"
               "  \"workers\": %zu,\n  \"duration_ms\": %lld,\n"
               "  \"loads\": [\n",
               scale, xml.size(), workers,
               static_cast<long long>(duration_ms));
  auto emit_cell = [&](const char* name, const CellResult& cell,
                       const char* trailer) {
    std::fprintf(out,
                 "      \"%s\": {\"ok\": %llu, \"shed\": %llu, "
                 "\"shed_rate\": %.4f, \"throughput_qps\": %.1f, "
                 "\"p50_us\": %.0f, \"p99_us\": %.0f}%s\n",
                 name, static_cast<unsigned long long>(cell.ok),
                 static_cast<unsigned long long>(cell.shed),
                 cell.shed_rate(), cell.throughput_qps(), cell.p50_us,
                 cell.p99_us, trailer);
  };
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "    {\"multiplier\": %zu, \"clients\": %zu,\n",
                 rows[i].multiplier, rows[i].clients);
    emit_cell("resilient", rows[i].resilient, ",");
    emit_cell("unbounded", rows[i].unbounded, "");
    std::fprintf(out, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_overload.json\n");
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
