# Empty dependencies file for exrquy_compiler.
# This may be replaced when dependencies are built.
