// A generic monotone dataflow framework over the plan DAG.
//
// Every plan analysis in opt/ — column liveness (CDA), constant and
// arbitrary-order columns, key columns, cardinality intervals, error
// capability, order provenance — is an instance of the same scheme: a
// finite-height lattice of per-operator facts, a monotone transfer
// function, and a worklist that iterates to the least fixpoint. The two
// engines below factor that scheme out; opt/analyses.h instantiates them
// with the concrete domains.
//
// An analysis is a plain struct with:
//
//   using Fact = ...;                 // one lattice element per operator
//   Fact Bottom(const Dag&, OpId);    // the least element
//   bool Join(Fact* into, const Fact& from);  // least upper bound;
//                                     //   returns whether *into grew
//   // forward:  fact of an operator from the facts of its children
//   Fact Transfer(const Dag&, OpId, const std::vector<const Fact*>& in);
//   // backward: contributions of an operator's fact to its children
//   void Transfer(const Dag&, OpId, const Fact& fact,
//                 std::vector<Fact>* to_children);
//
// Convergence: OpIds are assigned bottom-up, so every edge points from a
// larger id to a smaller one and ascending id order is a topological
// order of the DAG — for free. The forward engine's worklist pops the
// smallest pending id (children first), the backward engine's the
// largest (parents first); on an acyclic graph each operator therefore
// transfers exactly once and the fixpoint is reached in a single sweep.
// The worklist re-enqueues dependents whenever a join grows a fact, so
// the engines stay correct for any monotone transfer over any
// finite-height lattice, not just for the single-sweep case.
//
// Memoization: forward facts depend only on the sub-DAG below an
// operator, and the DAG is append-only (rewrites add operators, never
// mutate existing ones), so ForwardDataflow caches facts across calls
// exactly like the old PropertyTracker did across a growing DAG.
// Backward facts depend on the chosen root and seed, so BackwardDataflow
// solves per (root, seed) without cross-root caching.
#ifndef EXRQUY_OPT_DATAFLOW_H_
#define EXRQUY_OPT_DATAFLOW_H_

#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algebra/algebra.h"

namespace exrquy {

// Fixpoint counters, exposed so tests can pin convergence behaviour and
// the optimizer bench can report analysis effort.
struct DataflowStats {
  size_t solves = 0;     // distinct Solve invocations
  size_t transfers = 0;  // transfer-function applications
  size_t rejoins = 0;    // joins that grew a fact after the first visit

  std::string ToString() const;
};

// Facts flow from children to parents (bottom-up). Facts are memoized
// across Get calls and across DAG growth.
template <typename A>
class ForwardDataflow {
 public:
  using Fact = typename A::Fact;

  explicit ForwardDataflow(const Dag* dag, A analysis = A())
      : dag_(dag), analysis_(std::move(analysis)) {}

  const Fact& Get(OpId id) {
    auto it = facts_.find(id);
    if (it == facts_.end()) {
      Solve(id);
      it = facts_.find(id);
    }
    return it->second;
  }

  const DataflowStats& stats() const { return stats_; }
  A& analysis() { return analysis_; }

 private:
  void Solve(OpId root) {
    ++stats_.solves;
    // The uncached part of the reachable sub-DAG.
    std::vector<OpId> pending;
    std::vector<OpId> stack = {root};
    std::unordered_set<OpId> seen = {root};
    while (!stack.empty()) {
      OpId id = stack.back();
      stack.pop_back();
      if (facts_.find(id) != facts_.end()) continue;
      pending.push_back(id);
      for (OpId c : dag_->op(id).children) {
        if (seen.insert(c).second) stack.push_back(c);
      }
    }
    // Reverse dependency edges among the pending operators.
    std::unordered_map<OpId, std::vector<OpId>> parents;
    for (OpId id : pending) {
      for (OpId c : dag_->op(id).children) {
        if (facts_.find(c) == facts_.end()) parents[c].push_back(id);
      }
    }
    for (OpId id : pending) {
      facts_.emplace(id, analysis_.Bottom(*dag_, id));
    }
    // Ascending worklist: children drain before any parent transfers.
    std::set<OpId> work(pending.begin(), pending.end());
    std::unordered_set<OpId> visited;
    while (!work.empty()) {
      OpId id = *work.begin();
      work.erase(work.begin());
      const Op& op = dag_->op(id);
      std::vector<const Fact*> in;
      in.reserve(op.children.size());
      for (OpId c : op.children) in.push_back(&facts_.at(c));
      Fact next = analysis_.Transfer(*dag_, id, in);
      ++stats_.transfers;
      if (analysis_.Join(&facts_.at(id), next)) {
        if (!visited.insert(id).second) ++stats_.rejoins;
        auto it = parents.find(id);
        if (it != parents.end()) {
          for (OpId p : it->second) work.insert(p);
        }
      } else {
        visited.insert(id);
      }
    }
  }

  const Dag* dag_;
  A analysis_;
  std::unordered_map<OpId, Fact> facts_;
  DataflowStats stats_;
};

// Facts flow from parents to children (top-down), seeded at a root.
template <typename A>
class BackwardDataflow {
 public:
  using Fact = typename A::Fact;

  explicit BackwardDataflow(const Dag* dag, A analysis = A())
      : dag_(dag), analysis_(std::move(analysis)) {}

  // Least fixpoint for the sub-DAG under `root`, with `seed` joined into
  // the root's fact. The result holds one fact per reachable operator.
  std::unordered_map<OpId, Fact> Solve(OpId root, const Fact& seed) {
    ++stats_.solves;
    std::unordered_map<OpId, Fact> facts;
    std::vector<OpId> order = dag_->ReachableFrom(root);
    for (OpId id : order) {
      facts.emplace(id, analysis_.Bottom(*dag_, id));
    }
    analysis_.Join(&facts.at(root), seed);
    // Descending worklist: every parent drains before its children.
    std::set<OpId, std::greater<OpId>> work(order.begin(), order.end());
    std::unordered_set<OpId> visited;
    while (!work.empty()) {
      OpId id = *work.begin();
      work.erase(work.begin());
      visited.insert(id);
      const Op& op = dag_->op(id);
      std::vector<Fact> contrib;
      contrib.reserve(op.children.size());
      for (OpId c : op.children) contrib.push_back(analysis_.Bottom(*dag_, c));
      analysis_.Transfer(*dag_, id, facts.at(id), &contrib);
      ++stats_.transfers;
      for (size_t i = 0; i < op.children.size(); ++i) {
        OpId c = op.children[i];
        if (analysis_.Join(&facts.at(c), contrib[i])) {
          if (visited.count(c) != 0) ++stats_.rejoins;
          work.insert(c);
        }
      }
    }
    return facts;
  }

  const DataflowStats& stats() const { return stats_; }
  A& analysis() { return analysis_; }

 private:
  const Dag* dag_;
  A analysis_;
  DataflowStats stats_;
};

}  // namespace exrquy

#endif  // EXRQUY_OPT_DATAFLOW_H_
