// End-to-end smoke tests: the paper's running examples evaluated through
// the full pipeline.
#include <gtest/gtest.h>

#include "api/session.h"

namespace exrquy {
namespace {

// The XML fragment of Figure 1, bound to document "t.xml" (root a).
constexpr char kFig1[] = "<a><b><c/><d/></b><c/></a>";

class SmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(session_.LoadDocument("t.xml", kFig1).ok());
  }

  std::string Run(const std::string& query, QueryOptions options = {}) {
    Result<QueryResult> r = session_.Execute(query, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << query;
    return r.ok() ? r->serialized : "<error: " + r.status().ToString() + ">";
  }

  Session session_;
};

TEST_F(SmokeTest, Literal) { EXPECT_EQ(Run("42"), "42"); }

TEST_F(SmokeTest, Sequence) { EXPECT_EQ(Run("(1, 2, 3)"), "1 2 3"); }

TEST_F(SmokeTest, Arithmetic) { EXPECT_EQ(Run("1 + 2 * 3"), "7"); }

TEST_F(SmokeTest, ForReturn) {
  // Expression (5) of the paper: iter -> seq.
  EXPECT_EQ(Run("for $x in (1, 2) return ($x, $x * 10)"), "1 10 2 20");
}

TEST_F(SmokeTest, NestedFor) {
  // Expression (6).
  EXPECT_EQ(Run("for $x in (1, 2) for $y in (10, 20) return $x + $y"),
            "11 21 12 22");
}

TEST_F(SmokeTest, PathChild) {
  EXPECT_EQ(Run(R"(doc("t.xml")/a/b/c)"), "<c/>");
}

TEST_F(SmokeTest, PathDescendant) {
  // $t//(c|d) of Section 1 yields (c1, d, c2) in document order.
  EXPECT_EQ(Run(R"(for $t in doc("t.xml")/a return count($t//c))"), "2");
}

TEST_F(SmokeTest, UnionDocOrder) {
  Result<QueryResult> r = session_.Execute(
      R"(let $t := doc("t.xml")/a return $t//c | $t//d)",
      QueryOptions{.enable_order_indifference = false});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->items.size(), 3u);
  EXPECT_EQ(r->items[0], "<c/>");  // c1
  EXPECT_EQ(r->items[1], "<d/>");
  EXPECT_EQ(r->items[2], "<c/>");  // c2
}

TEST_F(SmokeTest, ElementConstruction) {
  EXPECT_EQ(Run("<e pos=\"1\">{ 1 + 1 }</e>"), "<e pos=\"1\">2</e>");
}

TEST_F(SmokeTest, ForAtPositional) {
  // Expression (4).
  EXPECT_EQ(
      Run(R"(for $x at $p in ("a", "b", "c")
             return <e pos="{ $p }">{ $x }</e>)"),
      "<e pos=\"1\">a</e><e pos=\"2\">b</e><e pos=\"3\">c</e>");
}

TEST_F(SmokeTest, IfThenElse) {
  EXPECT_EQ(Run("for $x in (1, 2, 3) return if ($x < 3) then $x else 99"),
            "1 2 99");
}

TEST_F(SmokeTest, Quantifier) {
  EXPECT_EQ(Run("some $x in (1, 2, 3) satisfies $x > 2"), "true");
  EXPECT_EQ(Run("every $x in (1, 2, 3) satisfies $x > 2"), "false");
}

TEST_F(SmokeTest, CountEmptyExists) {
  EXPECT_EQ(Run(R"(count(doc("t.xml")//c))"), "2");
  EXPECT_EQ(Run(R"(empty(doc("t.xml")//x))"), "true");
  EXPECT_EQ(Run(R"(exists(doc("t.xml")//d))"), "true");
}

TEST_F(SmokeTest, GeneralComparison) {
  EXPECT_EQ(Run("(1, 2) = (2, 3)"), "true");
  EXPECT_EQ(Run("(1, 2) = (3, 4)"), "false");
}

TEST_F(SmokeTest, WhereClause) {
  EXPECT_EQ(Run("for $x in (1, 2, 3, 4) where $x mod 2 = 0 return $x"),
            "2 4");
}

TEST_F(SmokeTest, LetClause) {
  EXPECT_EQ(Run("let $x := (1, 2, 3) return count($x)"), "3");
}

TEST_F(SmokeTest, NodeComparison) {
  // Expression (3): seq order establishes doc order in new fragments.
  EXPECT_EQ(Run(R"(let $t := doc("t.xml")/a
                   let $b := $t//b, $d := $t//d,
                       $e := <e>{ $d, $b }</e>
                   return ($b << $d, $e/b << $e/d))"),
            "true false");
}

TEST_F(SmokeTest, PositionalPredicate) {
  EXPECT_EQ(Run(R"(for $t in doc("t.xml")/a return $t//c[1] is ($t//c)[1])"),
            "true");
  EXPECT_EQ(Run(R"(count(doc("t.xml")//c[2]))"), "1");
}

TEST_F(SmokeTest, UnorderedSameMultiset) {
  // unordered {} admits any permutation; the multiset must be stable.
  QueryOptions on;
  QueryOptions off;
  off.enable_order_indifference = false;
  std::string q = R"(unordered { for $t in doc("t.xml")/a return $t//(c|d) })";
  Result<QueryResult> a = session_.Execute(q, on);
  Result<QueryResult> b = session_.Execute(q, off);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  std::vector<std::string> ia = a->items;
  std::vector<std::string> ib = b->items;
  std::sort(ia.begin(), ia.end());
  std::sort(ib.begin(), ib.end());
  EXPECT_EQ(ia, ib);
  EXPECT_EQ(ia.size(), 3u);
}

TEST_F(SmokeTest, OrderBy) {
  EXPECT_EQ(Run(R"(for $x in (3, 1, 2) order by $x descending return $x)"),
            "3 2 1");
}

}  // namespace
}  // namespace exrquy
