# Empty dependencies file for test_sql_gen.
# This may be replaced when dependencies are built.
