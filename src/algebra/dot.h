// Graphviz DOT rendering of plan DAGs (for documentation and debugging;
// the paper's Figures 6, 9 and 10 are plan DAGs of this shape).
#ifndef EXRQUY_ALGEBRA_DOT_H_
#define EXRQUY_ALGEBRA_DOT_H_

#include <string>

#include "algebra/algebra.h"

namespace exrquy {

// One-line human-readable description of an operator, e.g.
// "RowNum pos:<item>|iter" or "Step child::site".
std::string OpToString(const Dag& dag, OpId id, const StrPool& strings);

// The sub-DAG rooted at `root` as a DOT digraph.
std::string PlanToDot(const Dag& dag, OpId root, const StrPool& strings);

// Indented textual plan tree (EXPLAIN-style). Shared sub-plans are
// printed once and referenced as "^<id>" afterwards.
std::string PlanToText(const Dag& dag, OpId root, const StrPool& strings);

}  // namespace exrquy

#endif  // EXRQUY_ALGEBRA_DOT_H_
