#include "opt/verify.h"

#include "opt/facts_audit.h"

#include <algorithm>
#include <string>
#include <vector>


namespace exrquy {
namespace {

std::string OpLabel(const Dag& dag, OpId id) {
  return "op " + std::to_string(id) + " (" +
         OpKindName(dag.op(id).kind) + ")";
}

Status Fail(const Dag& dag, OpId id, const char* invariant,
            const std::string& detail) {
  return Internal("plan verifier: [" + std::string(invariant) + "] " +
                  OpLabel(dag, id) + ": " + detail);
}

// ---------------------------------------------------------------------------
// (1) Structure: edge sanity, acyclicity, arity, constructor sharing.
// ---------------------------------------------------------------------------

size_t ExpectedChildren(OpKind kind) {
  switch (kind) {
    case OpKind::kLit:
    case OpKind::kDoc:
      return 0;
    case OpKind::kProject:
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kRowNum:
    case OpKind::kRowId:
    case OpKind::kFun:
    case OpKind::kAggr:
    case OpKind::kStep:
    case OpKind::kRange:
      return 1;
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin:
    case OpKind::kCross:
    case OpKind::kUnion:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
    case OpKind::kCardCheck:
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode:
      return 2;
  }
  return 0;
}

bool IsConstructor(OpKind kind) {
  return kind == OpKind::kElem || kind == OpKind::kAttr ||
         kind == OpKind::kTextNode;
}

// Collects the reachable sub-DAG into *order (ascending ids, which is
// bottom-up once the downward-edge invariant holds). Never follows an
// edge that is out of range or would close a cycle, so this terminates
// on arbitrarily malformed input.
Status CheckStructure(const Dag& dag, OpId root, std::vector<OpId>* order) {
  if (root == kNoOp || root >= dag.size()) {
    return Internal("plan verifier: [op-out-of-range] root id " +
                    std::to_string(root) + " does not name an operator (" +
                    std::to_string(dag.size()) + " ops in the DAG)");
  }
  std::vector<bool> seen(dag.size(), false);
  std::vector<OpId> stack = {root};
  seen[root] = true;
  while (!stack.empty()) {
    OpId id = stack.back();
    stack.pop_back();
    const Op& op = dag.op(id);
    if (op.children.size() != ExpectedChildren(op.kind)) {
      return Fail(dag, id, "child-arity",
                  "expected " + std::to_string(ExpectedChildren(op.kind)) +
                      " input(s), found " +
                      std::to_string(op.children.size()));
    }
    for (OpId c : op.children) {
      if (c == kNoOp) {
        return Fail(dag, id, "op-out-of-range", "child is kNoOp");
      }
      if (c >= dag.size()) {
        return Fail(dag, id, "op-out-of-range",
                    "child id " + std::to_string(c) + " exceeds DAG size " +
                        std::to_string(dag.size()));
      }
      if (c >= id) {
        // Ids are assigned bottom-up, so any non-downward edge is a
        // (potential) cycle.
        return Fail(dag, id, "acyclicity",
                    "edge to op " + std::to_string(c) +
                        " does not point to an earlier operator");
      }
      if (!seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  for (OpId id = 0; id < dag.size(); ++id) {
    if (seen[id]) order->push_back(id);
  }
  // Constructor sharing exemption: hash-consing must never have merged
  // two syntactic node constructors (distinct node identities).
  std::unordered_map<uint32_t, OpId> ctor_ids;
  for (OpId id : *order) {
    const Op& op = dag.op(id);
    if (IsConstructor(op.kind)) {
      if (op.constructor_id == 0) {
        return Fail(dag, id, "constructor-sharing",
                    "node constructor without a constructor id");
      }
      auto [it, inserted] = ctor_ids.emplace(op.constructor_id, id);
      if (!inserted) {
        return Fail(dag, id, "constructor-sharing",
                    "shares constructor id " +
                        std::to_string(op.constructor_id) + " with op " +
                        std::to_string(it->second));
      }
    } else if (op.constructor_id != 0) {
      return Fail(dag, id, "constructor-sharing",
                  "non-constructor carries constructor id " +
                      std::to_string(op.constructor_id));
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// (2) Schema: column references, duplicates, arities, re-derivation.
// ---------------------------------------------------------------------------

size_t FunArity(FunKind fun) {
  switch (fun) {
    case FunKind::kNeg:
    case FunKind::kNot:
    case FunKind::kAtomize:
    case FunKind::kToDouble:
    case FunKind::kToString:
    case FunKind::kStringLength:
    case FunKind::kUpperCase:
    case FunKind::kLowerCase:
    case FunKind::kNormalizeSpace:
    case FunKind::kAbs:
    case FunKind::kFloor:
    case FunKind::kCeiling:
    case FunKind::kRound:
    case FunKind::kNodeName:
      return 1;
    case FunKind::kSubstring3:
      return 3;
    default:
      return 2;  // arithmetic, comparisons, connectives, binary strings
  }
}

class SchemaChecker {
 public:
  explicit SchemaChecker(const Dag& dag) : dag_(dag) {}

  Status Check(OpId id) {
    id_ = id;
    const Op& op = dag_.op(id);
    std::vector<ColId> expected;
    EXRQUY_RETURN_IF_ERROR(Derive(op, &expected));
    // No duplicates, no kNoCol in the produced schema.
    for (size_t i = 0; i < expected.size(); ++i) {
      if (expected[i] == kNoCol) {
        return Fail(dag_, id, "no-col", "schema contains kNoCol");
      }
      for (size_t j = i + 1; j < expected.size(); ++j) {
        if (expected[i] == expected[j]) {
          return Fail(dag_, id, "duplicate-column",
                      "output column '" + ColName(expected[i]) +
                          "' produced twice");
        }
      }
    }
    if (expected != op.schema) {
      return Fail(dag_, id, "schema-mismatch",
                  "stored schema disagrees with re-derivation (" +
                      Cols(op.schema) + " vs " + Cols(expected) + ")");
    }
    return Status::Ok();
  }

 private:
  static std::string Cols(const std::vector<ColId>& cols) {
    std::string out = "[";
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i != 0) out += ",";
      out += cols[i] == kNoCol ? "<none>" : ColName(cols[i]);
    }
    return out + "]";
  }

  const Op& Child(const Op& op, size_t i) const {
    return dag_.op(op.children[i]);
  }

  // A column reference into child `i` of the current operator: must not
  // be kNoCol and must be produced by that child.
  Status Ref(const Op& op, size_t i, ColId c, const char* what) {
    if (c == kNoCol) {
      return Fail(dag_, id_, "no-col",
                  std::string(what) + " column is kNoCol");
    }
    if (!Child(op, i).HasCol(c)) {
      return Fail(dag_, id_, "dangling-column",
                  std::string(what) + " column '" + ColName(c) +
                      "' is not produced by input op " +
                      std::to_string(op.children[i]));
    }
    return Status::Ok();
  }

  Status Produced(ColId c, const char* what) {
    if (c == kNoCol) {
      return Fail(dag_, id_, "no-col",
                  std::string(what) + " column is kNoCol");
    }
    return Status::Ok();
  }

  Status Derive(const Op& op, std::vector<ColId>* out) {
    switch (op.kind) {
      case OpKind::kLit: {
        for (const auto& row : op.lit.rows) {
          if (row.size() != op.lit.cols.size()) {
            return Fail(dag_, id_, "lit-shape",
                        "row with " + std::to_string(row.size()) +
                            " value(s) in a " +
                            std::to_string(op.lit.cols.size()) +
                            "-column literal");
          }
        }
        *out = op.lit.cols;
        return Status::Ok();
      }
      case OpKind::kProject: {
        for (const auto& [n, o] : op.proj) {
          EXRQUY_RETURN_IF_ERROR(Produced(n, "projected"));
          EXRQUY_RETURN_IF_ERROR(Ref(op, 0, o, "projection source"));
          out->push_back(n);
        }
        return Status::Ok();
      }
      case OpKind::kSelect:
        EXRQUY_RETURN_IF_ERROR(Ref(op, 0, op.col, "selection"));
        *out = Child(op, 0).schema;
        return Status::Ok();
      case OpKind::kThetaJoin:
        if (op.fun != FunKind::kEq && op.fun != FunKind::kNe &&
            op.fun != FunKind::kLt && op.fun != FunKind::kLe &&
            op.fun != FunKind::kGt && op.fun != FunKind::kGe) {
          return Fail(dag_, id_, "theta-comparison",
                      std::string("'") + FunKindName(op.fun) +
                          "' is not a value comparison");
        }
        [[fallthrough]];
      case OpKind::kEquiJoin:
        EXRQUY_RETURN_IF_ERROR(Ref(op, 0, op.col, "left join"));
        EXRQUY_RETURN_IF_ERROR(Ref(op, 1, op.col2, "right join"));
        [[fallthrough]];
      case OpKind::kCross: {
        *out = Child(op, 0).schema;
        for (ColId c : Child(op, 1).schema) out->push_back(c);
        return Status::Ok();  // duplicate check above reports overlap
      }
      case OpKind::kUnion: {
        const std::vector<ColId>& l = Child(op, 0).schema;
        std::vector<ColId> ls = l;
        std::vector<ColId> rs = Child(op, 1).schema;
        std::sort(ls.begin(), ls.end());
        std::sort(rs.begin(), rs.end());
        if (ls != rs) {
          return Fail(dag_, id_, "union-schema",
                      "branch schemas differ (" + Cols(Child(op, 0).schema) +
                          " vs " + Cols(Child(op, 1).schema) + ")");
        }
        *out = l;
        return Status::Ok();
      }
      case OpKind::kDifference:
      case OpKind::kSemiJoin: {
        for (ColId c : op.keys) {
          EXRQUY_RETURN_IF_ERROR(Ref(op, 0, c, "key"));
          EXRQUY_RETURN_IF_ERROR(Ref(op, 1, c, "key"));
        }
        *out = Child(op, 0).schema;
        return Status::Ok();
      }
      case OpKind::kDistinct:
        *out = Child(op, 0).schema;
        return Status::Ok();
      case OpKind::kRowNum: {
        for (const SortKey& k : op.order) {
          EXRQUY_RETURN_IF_ERROR(Ref(op, 0, k.col, "order"));
        }
        if (op.part != kNoCol) {
          EXRQUY_RETURN_IF_ERROR(Ref(op, 0, op.part, "partition"));
        }
        EXRQUY_RETURN_IF_ERROR(Produced(op.col, "rank"));
        *out = Child(op, 0).schema;
        out->push_back(op.col);
        return Status::Ok();
      }
      case OpKind::kRowId:
        EXRQUY_RETURN_IF_ERROR(Produced(op.col, "row id"));
        *out = Child(op, 0).schema;
        out->push_back(op.col);
        return Status::Ok();
      case OpKind::kFun: {
        if (op.args.size() != FunArity(op.fun)) {
          return Fail(dag_, id_, "fun-arity",
                      std::string(FunKindName(op.fun)) + " takes " +
                          std::to_string(FunArity(op.fun)) +
                          " argument(s), found " +
                          std::to_string(op.args.size()));
        }
        for (ColId a : op.args) {
          EXRQUY_RETURN_IF_ERROR(Ref(op, 0, a, "argument"));
        }
        EXRQUY_RETURN_IF_ERROR(Produced(op.col, "result"));
        *out = Child(op, 0).schema;
        out->push_back(op.col);
        return Status::Ok();
      }
      case OpKind::kAggr: {
        if (op.aggr == AggrKind::kCount) {
          // fn:count needs no argument column; a stray one must still be
          // a real column (the dependency analysis will demand it).
          if (op.col2 != kNoCol) {
            EXRQUY_RETURN_IF_ERROR(Ref(op, 0, op.col2, "aggregate"));
          }
        } else {
          EXRQUY_RETURN_IF_ERROR(Ref(op, 0, op.col2, "aggregate"));
        }
        if (op.keys.size() > 1) {
          return Fail(dag_, id_, "aggr-order",
                      "at most one intra-group order column, found " +
                          std::to_string(op.keys.size()));
        }
        for (ColId c : op.keys) {
          EXRQUY_RETURN_IF_ERROR(Ref(op, 0, c, "group order"));
        }
        EXRQUY_RETURN_IF_ERROR(Produced(op.col, "result"));
        if (op.part != kNoCol) {
          EXRQUY_RETURN_IF_ERROR(Ref(op, 0, op.part, "partition"));
          out->push_back(op.part);
        }
        out->push_back(op.col);
        return Status::Ok();
      }
      case OpKind::kStep:
        EXRQUY_RETURN_IF_ERROR(Ref(op, 0, col::iter(), "context iter"));
        EXRQUY_RETURN_IF_ERROR(Ref(op, 0, col::item(), "context item"));
        *out = {col::iter(), col::item()};
        return Status::Ok();
      case OpKind::kDoc:
        *out = {col::item()};
        return Status::Ok();
      case OpKind::kElem:
      case OpKind::kAttr:
      case OpKind::kTextNode:
        EXRQUY_RETURN_IF_ERROR(Ref(op, 0, col::iter(), "content iter"));
        EXRQUY_RETURN_IF_ERROR(Ref(op, 0, col::pos(), "content pos"));
        EXRQUY_RETURN_IF_ERROR(Ref(op, 0, col::item(), "content item"));
        EXRQUY_RETURN_IF_ERROR(Ref(op, 1, col::iter(), "loop iter"));
        *out = {col::iter(), col::item()};
        return Status::Ok();
      case OpKind::kRange:
        EXRQUY_RETURN_IF_ERROR(Ref(op, 0, col::iter(), "context iter"));
        EXRQUY_RETURN_IF_ERROR(Ref(op, 0, op.col, "range lower"));
        EXRQUY_RETURN_IF_ERROR(Ref(op, 0, op.col2, "range upper"));
        *out = {col::iter(), col::item()};
        return Status::Ok();
      case OpKind::kCardCheck:
        if (op.min_card < 0 || op.max_card < op.min_card) {
          return Fail(dag_, id_, "card-bounds",
                      "bounds [" + std::to_string(op.min_card) + "," +
                          std::to_string(op.max_card) + "] are not a valid "
                          "cardinality interval");
        }
        EXRQUY_RETURN_IF_ERROR(Ref(op, 0, col::iter(), "checked iter"));
        EXRQUY_RETURN_IF_ERROR(Ref(op, 1, col::iter(), "loop iter"));
        *out = Child(op, 0).schema;
        return Status::Ok();
    }
    return Fail(dag_, id_, "child-arity", "unknown operator kind");
  }

  const Dag& dag_;
  OpId id_ = kNoOp;
};

// ---------------------------------------------------------------------------
// (3) Properties: independent fact derivation + claim auditing. The
// fact base itself (OpFacts, DeriveFacts, DeriveScaffolding,
// DeriveLiveColumns) lives in opt/facts_audit.cc, shared with the
// rewrite-certificate checker.
// ---------------------------------------------------------------------------

}  // namespace

Status CheckClaims(const Dag& dag, OpId id, const OpFacts& claimed,
                   const OpFacts& derived) {
  const Op& op = dag.op(id);
  struct Aspect {
    const char* what;
    const ColSet& claim;
    const ColSet& fact;
  };
  const Aspect aspects[] = {
      {"constant", claimed.constant, derived.constant},
      {"arbitrary-order", claimed.arbitrary, derived.arbitrary},
      {"key", claimed.keys, derived.keys},
  };
  for (const Aspect& a : aspects) {
    for (ColId c : a.claim) {
      if (!op.HasCol(c)) {
        return Fail(dag, id, "property-claim",
                    std::string(a.what) + " claim for column '" +
                        ColName(c) + "' which is not in the schema");
      }
      if (a.fact.count(c) == 0) {
        return Fail(dag, id, "property-claim",
                    std::string(a.what) + " claim for column '" +
                        ColName(c) + "' is not independently derivable");
      }
    }
  }
  return Status::Ok();
}

Status CheckCardClaim(const Dag& dag, OpId id, const CardRange& claimed,
                      const OpFacts& derived) {
  // Sound iff the derived interval is contained in the claimed one: a
  // claim tighter than what is independently derivable could exclude a
  // row count the plan can actually produce.
  if (claimed.min > derived.min_rows || claimed.max < derived.max_rows) {
    CardRange d;
    d.min = derived.min_rows;
    d.max = derived.max_rows;
    return Fail(dag, id, "cardinality-claim",
                "claimed row bounds " + claimed.ToString() +
                    " do not contain the derivable bounds " + d.ToString());
  }
  return Status::Ok();
}

Status CheckSemTypeClaims(const Dag& dag, OpId id, const SemType& claimed,
                          const OpFacts& derived) {
  const Op& op = dag.op(id);
  for (const auto& [c, k] : claimed.kinds) {
    if (!op.HasCol(c)) {
      return Fail(dag, id, "semantic-type-claim",
                  "kind claim for column '" + ColName(c) +
                      "' which is not in the schema");
    }
    // A claim is sound only if it is at least as wide as (contains) the
    // independently derivable kind.
    if (!KindLe(KindAt(derived, c), k)) {
      return Fail(dag, id, "semantic-type-claim",
                  "kind claim '" + std::string(ItemKindName(k)) +
                      "' for column '" + ColName(c) +
                      "' is not independently derivable (derived '" +
                      ItemKindName(KindAt(derived, c)) + "')");
    }
  }
  // A unit-group column means groups of at most one row, i.e. the column
  // is duplicate-free — auditable against the independently derived
  // row-identifying columns.
  for (ColId c : claimed.unit_groups) {
    if (!op.HasCol(c)) {
      return Fail(dag, id, "semantic-type-claim",
                  "unit-group claim for column '" + ColName(c) +
                      "' which is not in the schema");
    }
    if (derived.keys.count(c) == 0) {
      return Fail(dag, id, "semantic-type-claim",
                  "unit-group claim for column '" + ColName(c) +
                      "' is not independently derivable as duplicate-free");
    }
  }
  return Status::Ok();
}

Status CheckOrderClaims(const Dag& dag, OpId id, const OrderFacts& claimed,
                        const OpFacts& derived) {
  const Op& op = dag.op(id);
  for (const OrderFact& f : claimed.facts) {
    for (const SortKey& k : f.keys) {
      if (!op.HasCol(k.col)) {
        return Fail(dag, id, "order-dependency-claim",
                    "sorted claim " + f.ToString() + " names column '" +
                        ColName(k.col) + "' which is not in the schema");
      }
    }
    if (derived.at_most_one_row) continue;  // one row is sorted every way
    bool implied = false;
    for (const OrderFact& g : derived.sorted) {
      if (SortedImplies(g, f)) {
        implied = true;
        break;
      }
    }
    if (!implied) {
      return Fail(dag, id, "order-dependency-claim",
                  "sorted claim " + f.ToString() +
                      " is not implied by any independently derived fact");
    }
  }
  return Status::Ok();
}

Status VerifyPlan(const Dag& dag, OpId root, const VerifyOptions& options) {
  std::vector<OpId> order;
  // Structure must hold before anything else may walk the DAG.
  EXRQUY_RETURN_IF_ERROR(CheckStructure(dag, root, &order));
  if (options.check_schema || options.check_properties) {
    SchemaChecker schemas(dag);
    for (OpId id : order) {
      EXRQUY_RETURN_IF_ERROR(schemas.Check(id));
    }
  }
  if (options.check_properties) {
    // Audit every claim the optimizer's analyses make — constant /
    // arbitrary-order columns (license % weakening), key columns
    // (license Distinct elimination and keyed % collapse) and row-count
    // bounds (license the empty-plan short-circuit) — against an
    // independent derivation.
    std::unordered_map<OpId, OpFacts> facts = DeriveFacts(dag, root);
    PropertyTracker tracker(&dag);
    CardTracker cards(&dag);
    KeyTracker keys(&dag, &cards);
    SemTypeTracker sem(&dag, &cards);
    OrderTracker od(&dag, &tracker, &cards, &keys, &sem);
    for (OpId id : order) {
      const ColProps& claimed = tracker.Get(id);
      OpFacts claim;
      claim.constant = claimed.constant;
      claim.arbitrary = claimed.arbitrary;
      claim.keys = keys.Get(id);
      EXRQUY_RETURN_IF_ERROR(CheckClaims(dag, id, claim, facts.at(id)));
      EXRQUY_RETURN_IF_ERROR(
          CheckCardClaim(dag, id, cards.Get(id), facts.at(id)));
      // The semantic-type and order-dependency domains (which license
      // the %→const and %→# trades) are audited the same way, against
      // the independent re-derivations in DeriveOpFacts.
      EXRQUY_RETURN_IF_ERROR(
          CheckSemTypeClaims(dag, id, sem.Get(id), facts.at(id)));
      EXRQUY_RETURN_IF_ERROR(
          CheckOrderClaims(dag, id, od.Get(id), facts.at(id)));
    }
    // Join-graph isolation: a recognized value join (ThetaJoin, or an
    // EquiJoin carrying the value-join mark) must keep the iteration/
    // order scaffolding out of its predicate — its key columns must
    // carry item values. Hash-equality joins must additionally sit in a
    // kind class where exact value equality coincides with the `eq`
    // comparison (int/int, string-class/string-class, bool/bool);
    // anything wider would need the pairwise-Compare ThetaJoin kernel.
    std::unordered_map<OpId, ColSet> scaff = DeriveScaffolding(dag, order);
    for (OpId id : order) {
      const Op& op = dag.op(id);
      bool theta = op.kind == OpKind::kThetaJoin;
      bool value_equi = op.kind == OpKind::kEquiJoin && op.value_join;
      if (!theta && !value_equi) continue;
      if (scaff.at(op.children[0]).count(op.col) != 0) {
        return Fail(dag, id, "join-isolation-claim",
                    "join predicate touches scaffolding column '" +
                        ColName(op.col) + "'");
      }
      if (scaff.at(op.children[1]).count(op.col2) != 0) {
        return Fail(dag, id, "join-isolation-claim",
                    "join predicate touches scaffolding column '" +
                        ColName(op.col2) + "'");
      }
      if (value_equi) {
        ItemKind lk = KindAt(facts.at(op.children[0]), op.col);
        ItemKind rk = KindAt(facts.at(op.children[1]), op.col2);
        bool safe = lk == rk && (lk == ItemKind::kInt ||
                                 lk == ItemKind::kString ||
                                 lk == ItemKind::kBool);
        if (!safe) {
          return Fail(dag, id, "join-isolation-claim",
                      "hash equality over kinds '" +
                          std::string(ItemKindName(lk)) + "'/'" +
                          ItemKindName(rk) +
                          "' does not coincide with the eq comparison");
        }
      }
    }
    // The column dependency analysis must only ever demand columns the
    // operator produces — otherwise CDA pruning has deleted (or could
    // delete) a live column.
    ColSet seed;
    for (ColId c : {col::iter(), col::pos(), col::item()}) {
      if (dag.op(root).HasCol(c)) seed.insert(c);
    }
    std::unordered_map<OpId, ColSet> icols = ComputeICols(dag, root, seed);
    for (OpId id : order) {
      auto it = icols.find(id);
      if (it == icols.end()) continue;
      for (ColId c : it->second) {
        if (!dag.op(id).HasCol(c)) {
          return Fail(dag, id, "live-column",
                      "dependency analysis requires column '" + ColName(c) +
                          "' which the operator cannot produce");
        }
      }
    }
    // The framework liveness must agree exactly with the preserved
    // one-shot walk it replaced.
    std::unordered_map<OpId, ColSet> reference =
        DeriveLiveColumns(dag, root, seed);
    for (OpId id : order) {
      const ColSet& got = icols[id];
      const ColSet& want = reference[id];
      if (got != want) {
        return Fail(dag, id, "liveness-equivalence",
                    "framework liveness " + ColSetToString(got) +
                        " differs from the reference walk " +
                        ColSetToString(want));
      }
    }
    // Order provenance is liveness with attribution: it must demand
    // exactly the live columns, and every demanded column must carry at
    // least one in-range reason.
    OrderProvenance prov =
        ComputeOrderProvenance(dag, root, seed, /*strings=*/nullptr);
    for (OpId id : order) {
      const ColSet& live = icols[id];
      auto dit = prov.demand.find(id);
      ColSet domain;
      if (dit != prov.demand.end()) {
        for (const auto& [c, reasons] : dit->second) {
          domain.insert(c);
          if (reasons.empty()) {
            return Fail(dag, id, "order-provenance",
                        "demanded column '" + ColName(c) +
                            "' carries no attributed reason");
          }
          for (uint32_t rid : reasons) {
            if (rid >= prov.reasons.size()) {
              return Fail(dag, id, "order-provenance",
                          "reason id " + std::to_string(rid) +
                              " out of range for column '" + ColName(c) +
                              "'");
            }
          }
        }
      }
      if (domain != live) {
        return Fail(dag, id, "order-provenance",
                    "provenance demand " + ColSetToString(domain) +
                        " differs from live columns " +
                        ColSetToString(live));
      }
    }
  }
  return Status::Ok();
}

}  // namespace exrquy
