// The XPath location-step operator ⊙ax::nt of Table 1: consumes
// (iter, context node) pairs and produces a duplicate-free table of
// (iter, result node) pairs. The implementation follows the staircase
// join idea — context sets are sorted and pruned (a context contained in
// another context's subtree contributes nothing new to descendant-type
// axes) — and uses a per-tag name index (binary-searched preorder ranges)
// as the fast path for descendant::nt, the access pattern that TwigStack-
// style element streams provide in the paper's setting.
#ifndef EXRQUY_XML_STEP_H_
#define EXRQUY_XML_STEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/node_store.h"

namespace exrquy {

enum class Axis : uint8_t {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kSelf,
  kAttribute,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
  kFollowing,
  kPreceding,
};

const char* AxisName(Axis axis);

// A node test. Name and wildcard tests select the principal node kind of
// the axis (attributes on the attribute axis, elements elsewhere).
struct NodeTest {
  enum class Kind : uint8_t {
    kAnyKind,   // node()
    kText,      // text()
    kComment,   // comment()
    kWildcard,  // *
    kName,      // QName
  };

  Kind kind = Kind::kAnyKind;
  StrId name = StrPool::kEmpty;

  static NodeTest AnyKind() { return NodeTest{Kind::kAnyKind, 0}; }
  static NodeTest Text() { return NodeTest{Kind::kText, 0}; }
  static NodeTest Wildcard() { return NodeTest{Kind::kWildcard, 0}; }
  static NodeTest Name(StrId n) { return NodeTest{Kind::kName, n}; }

  bool operator==(const NodeTest& other) const = default;
};

std::string NodeTestToString(const NodeTest& test, const StrPool& strings);

// True iff node `n` matches `test` under `axis`'s principal node kind.
bool MatchesTest(const NodeStore& store, NodeIdx n, Axis axis,
                 const NodeTest& test);

// Evaluates the step for every (iter, node) context pair. Contexts need
// not be sorted or duplicate-free. The output is duplicate-free per iter
// and sorted by (iter, node) — a deterministic order the *algebra* does
// not rely on (sequence order is derived upstream by % or #, per the
// paper).
void EvalStep(const NodeStore& store, Axis axis, const NodeTest& test,
              std::vector<int64_t> iters, std::vector<NodeIdx> nodes,
              std::vector<int64_t>* out_iters,
              std::vector<NodeIdx>* out_nodes);

}  // namespace exrquy

#endif  // EXRQUY_XML_STEP_H_
