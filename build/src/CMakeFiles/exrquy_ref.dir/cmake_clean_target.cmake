file(REMOVE_RECURSE
  "libexrquy_ref.a"
)
