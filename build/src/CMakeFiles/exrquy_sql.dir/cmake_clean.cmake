file(REMOVE_RECURSE
  "CMakeFiles/exrquy_sql.dir/sql/sql_gen.cc.o"
  "CMakeFiles/exrquy_sql.dir/sql/sql_gen.cc.o.d"
  "libexrquy_sql.a"
  "libexrquy_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exrquy_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
