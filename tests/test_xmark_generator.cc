// Tests for the XMark-style data generator: determinism, scaling, and
// the structural features each benchmark query depends on (checked by
// querying the generated data).
#include <gtest/gtest.h>

#include "api/session.h"
#include "xmark/generator.h"

namespace exrquy {
namespace {

TEST(XMarkGeneratorTest, DeterministicForSeedAndScale) {
  XMarkOptions a;
  a.scale = 0.003;
  a.seed = 7;
  XMarkOptions b = a;
  EXPECT_EQ(GenerateXMark(a), GenerateXMark(b));
}

TEST(XMarkGeneratorTest, SeedChangesContent) {
  XMarkOptions a;
  a.scale = 0.003;
  a.seed = 7;
  XMarkOptions b = a;
  b.seed = 8;
  EXPECT_NE(GenerateXMark(a), GenerateXMark(b));
}

TEST(XMarkGeneratorTest, ScaleGrowsDocument) {
  XMarkOptions small;
  small.scale = 0.002;
  XMarkOptions large;
  large.scale = 0.02;
  EXPECT_GT(GenerateXMark(large).size(), 4 * GenerateXMark(small).size());
}

class XMarkStructureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.004;
    ASSERT_TRUE(
        session_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  long Count(const std::string& expr) {
    Result<QueryResult> r = session_->Execute("count(" + expr + ")", {});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::stol(r->items[0]) : -1;
  }

  static Session* session_;
};

Session* XMarkStructureTest::session_ = nullptr;

TEST_F(XMarkStructureTest, TopLevelSections) {
  EXPECT_EQ(Count(R"(doc("auction.xml")/site)"), 1);
  EXPECT_EQ(Count(R"(doc("auction.xml")/site/regions/*)"), 6);
  EXPECT_EQ(Count(R"(doc("auction.xml")/site/categories)"), 1);
  EXPECT_EQ(Count(R"(doc("auction.xml")/site/catgraph)"), 1);
  EXPECT_EQ(Count(R"(doc("auction.xml")/site/people)"), 1);
  EXPECT_EQ(Count(R"(doc("auction.xml")/site/open_auctions)"), 1);
  EXPECT_EQ(Count(R"(doc("auction.xml")/site/closed_auctions)"), 1);
}

TEST_F(XMarkStructureTest, EntityCounts) {
  EXPECT_GT(Count(R"(doc("auction.xml")//item)"), 50);
  EXPECT_GT(Count(R"(doc("auction.xml")//person)"), 80);
  EXPECT_GT(Count(R"(doc("auction.xml")//open_auction)"), 30);
  EXPECT_GT(Count(R"(doc("auction.xml")//closed_auction)"), 30);
}

TEST_F(XMarkStructureTest, PersonIdsUniqueAndDense) {
  long persons = Count(R"(doc("auction.xml")//person)");
  EXPECT_EQ(
      Count(R"(distinct-values(doc("auction.xml")//person/@id))"), persons);
  EXPECT_EQ(Count(R"(doc("auction.xml")//person[@id = "person0"])"), 1);
}

TEST_F(XMarkStructureTest, FeaturesForQ12AndQ20) {
  // Some profiles carry an income attribute, some do not (Q20's 'na'
  // bucket), and the income parses as a number.
  long with_income = Count(R"(doc("auction.xml")//profile[@income])");
  long profiles = Count(R"(doc("auction.xml")//profile)");
  EXPECT_GT(with_income, 0);
  EXPECT_LT(with_income, profiles);
  Result<QueryResult> r = session_->Execute(
      R"(max(doc("auction.xml")//profile/@income) > 0)", {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->serialized, "true");
}

TEST_F(XMarkStructureTest, FeaturesForQ15DeepPath) {
  // The deep parlist/listitem/parlist/listitem/text/emph/keyword chain
  // must exist (Q15/Q16 would otherwise be vacuous).
  EXPECT_GT(
      Count(
          R"(doc("auction.xml")/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword)"),
      0);
}

TEST_F(XMarkStructureTest, FeaturesForQ14GoldDescriptions) {
  EXPECT_GT(Count(R"(doc("auction.xml")//item[contains(
      string(exactly-one(./description)), "gold")])"),
            0);
}

TEST_F(XMarkStructureTest, FeaturesForQ17MissingHomepages) {
  long with = Count(R"(doc("auction.xml")//person[homepage])");
  long total = Count(R"(doc("auction.xml")//person)");
  EXPECT_GT(with, 0);
  EXPECT_LT(with, total);
}

TEST_F(XMarkStructureTest, BiddersAndIncreasesForQ2Q3) {
  EXPECT_GT(Count(R"(doc("auction.xml")//bidder)"), 0);
  EXPECT_GT(Count(R"(doc("auction.xml")//bidder/increase)"), 0);
  // Auctions with >= 2 bidders exist (Q3's first vs last comparison).
  EXPECT_GT(Count(R"(doc("auction.xml")//open_auction[bidder[2]])"), 0);
}

}  // namespace
}  // namespace exrquy
