// A guided tour of the paper's running examples: the four order
// interactions of Section 2, ordering mode unordered, fn:unordered(),
// and the '|' -> ',' trade of Section 4.2 — each evaluated live, with
// the executed plans' % / # tallies printed alongside.
#include <cstdio>
#include <string>

#include "algebra/dot.h"
#include "api/session.h"

namespace {

exrquy::Session g_session;

void Show(const char* caption, const std::string& query,
          const exrquy::QueryOptions& options = {}) {
  exrquy::Result<exrquy::QueryResult> r = g_session.Execute(query, options);
  std::printf("%s\n  %s\n", caption, query.c_str());
  if (!r.ok()) {
    std::printf("  error: %s\n\n", r.status().ToString().c_str());
    return;
  }
  std::printf("  => %s\n  plan: %s\n\n", r->serialized.c_str(),
              r->plan_optimized.ToString().c_str());
}

}  // namespace

int main() {
  // $t is bound to the XML fragment of Figure 1.
  exrquy::Status st =
      g_session.LoadDocument("t.xml", "<a><b><c/><d/></b><c/></a>");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("== Order interactions (Section 2) ==\n\n");

  Show("(1) doc -> seq: path results come back in document order",
       R"(for $t in doc("t.xml")/a return $t//(c|d))");

  Show("(2) seq -> doc: content sequence order becomes document order",
       R"(let $t := doc("t.xml")/a
let $b := $t//b, $d := $t//d, $e := <e>{ $d, $b }</e>
return ($b << $d, $e/b << $e/d))");

  Show("(3) seq -> iter: bindings are drawn in sequence order",
       R"(for $x at $p in ("a","b","c") return <e pos="{ $p }">{ $x }</e>)");

  Show("(4) iter -> seq: per-iteration results assemble in binding order",
       "for $x in (1,2) return ($x, $x * 10)");

  std::printf("== Weakened order semantics ==\n\n");

  exrquy::QueryOptions unordered_mode;
  unordered_mode.default_ordering = exrquy::OrderingMode::kUnordered;

  Show("unordered {}: the union may come back as a concatenation\n"
       "(the paper's (c1, c2, d) order — '|' traded for ','):",
       R"(unordered { for $t in doc("t.xml")/a return $t//(c|d) })");

  Show("positional variables stay consistent under mode unordered:",
       R"(for $x at $p in ("a","b","c") return <e pos="{ $p }">{ $x }</e>)",
       unordered_mode);

  Show("iter -> seq survives mode unordered (pairs stay adjacent):",
       "for $x in (1,2) return ($x, $x * 10)", unordered_mode);

  Show("fn:unordered() also releases the seq -> iter pairing:",
       "unordered(for $x in (1,2) return ($x, $x * 10))", unordered_mode);

  Show("aggregates are order indifferent in *either* mode (Rule FN:COUNT\n"
       "— note the sort-free plan):",
       R"(count(doc("t.xml")//(c|d)))");

  Show("the let-unfolding counterexample of Section 2.2 — $c2 is fixed\n"
       "before unordered {} applies, so the result is deterministic:",
       R"(let $t := doc("t.xml")/a
let $c2 := ($t//c)[2]
return unordered { $c2 } is ($t//c)[2])");

  std::printf(
      "== Plan inspection ==\n\n"
      "Use Session::Plan + PlanToDot to render any plan as Graphviz DOT;\n"
      "bench_fig6_plan_shapes writes the paper's Figure 6 plans that "
      "way.\n");
  return 0;
}
