#include "api/session.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "algebra/dot.h"
#include "engine/value.h"
#include "xml/serializer.h"
#include "compiler/compile.h"
#include "opt/analyses.h"
#include "opt/pipeline.h"
#include "opt/verify.h"
#include "xml/xml_parser.h"
#include "xquery/normalize.h"
#include "xquery/parser.h"

namespace exrquy {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

uint64_t EnvU64(const char* name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v, &end, 10);
  return end == v ? 0 : static_cast<uint64_t>(n);
}

// Whether the rewrite this certificate describes made it into the plan:
// strict mode keeps the old sub-plan when the obligation fails.
bool Committed(const RewriteTrade& t, const CertifySettings& resolved) {
  return !(resolved.mode == CertifyMode::kStrict && t.checked && !t.valid);
}

}  // namespace

Session::Session() : store_(&strings_) {}

Status Session::LoadDocument(std::string_view name, std::string_view xml) {
  EXRQUY_ASSIGN_OR_RETURN(NodeIdx root, ParseXml(&store_, xml));
  store_.IndexFragment(store_.fragment_count() - 1);
  documents_[strings_.Intern(name)] = root;
  return Status::Ok();
}

Status Session::LoadDocumentFile(std::string_view name,
                                 const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadDocument(name, buf.str());
}

Result<QueryPlans> PlanQuery(std::string_view query,
                             const QueryOptions& options, StrPool* strings) {
  EXRQUY_ASSIGN_OR_RETURN(Query parsed, ParseQuery(query));

  NormalizeOptions norm;
  norm.insert_unordered =
      options.enable_order_indifference && options.insert_unordered;
  EXRQUY_RETURN_IF_ERROR(Normalize(&parsed, norm));

  CompileOptions copts;
  copts.default_mode = options.default_ordering;
  copts.exploit_unordered =
      options.enable_order_indifference && options.mode_rules;
  EXRQUY_ASSIGN_OR_RETURN(CompiledQuery compiled,
                          CompileQuery(parsed, strings, copts));

  QueryPlans plans;
  plans.dag = std::move(compiled.dag);
  plans.initial = compiled.root;

  // Every compiled plan is statically verified before it goes anywhere
  // near the rewrites or the engine: a miscompilation surfaces here as a
  // Status naming the violated invariant, not as wrong answers or UB.
  Status verified = VerifyPlan(*plans.dag, plans.initial);
  if (!verified.ok()) {
    return Internal("compiled plan rejected: " + verified.message());
  }

  OptimizeOptions oopts;
  oopts.enable = options.enable_order_indifference;
  oopts.rewrites.column_pruning = options.column_pruning;
  oopts.rewrites.weaken_rownum = options.weaken_rownum;
  oopts.rewrites.distinct_elimination = options.distinct_elimination;
  oopts.rewrites.step_merging = options.step_merging;
  oopts.rewrites.distinct_by_keys = options.distinct_by_keys;
  oopts.rewrites.empty_short_circuit = options.empty_short_circuit;
  oopts.rewrites.rownum_by_keys = options.rownum_by_keys;
  oopts.rewrites.rownum_by_od = options.rownum_by_od;
  oopts.rewrites.join_recognition = options.join_recognition;
  oopts.rewrites.theta_join = options.theta_join;
  oopts.rewrites.certify = options.certify;
  oopts.verify_each_pass = options.verify_each_pass;
  oopts.strings = strings;
  oopts.trade_log = &plans.trades;
  EXRQUY_ASSIGN_OR_RETURN(
      plans.optimized, Optimize(plans.dag.get(), plans.initial, oopts));

  // And once more after the pipeline (cheap single pass) so a rewrite
  // bug is caught even when the per-pass hook is off.
  verified = VerifyPlan(*plans.dag, plans.optimized);
  if (!verified.ok()) {
    return Internal("optimized plan rejected: " + verified.message());
  }
  return plans;
}

Result<QueryPlans> Session::PlanInternal(std::string_view query,
                                         const QueryOptions& options) {
  return PlanQuery(query, options, &strings_);
}

Result<QueryPlans> Session::Plan(std::string_view query,
                                 const QueryOptions& options) {
  return PlanInternal(query, options);
}

Result<OrderExplanation> Session::ExplainOrder(std::string_view query,
                                               const QueryOptions& options) {
  EXRQUY_ASSIGN_OR_RETURN(QueryPlans plans, PlanInternal(query, options));
  const Dag& dag = *plans.dag;
  ColSet seed;
  for (ColId c : {col::iter(), col::pos(), col::item()}) {
    if (dag.op(plans.optimized).HasCol(c)) seed.insert(c);
  }
  OrderProvenance prov =
      ComputeOrderProvenance(dag, plans.optimized, seed, &strings_);
  OrderExplanation out;
  for (OpId id : dag.ReachableFrom(plans.optimized)) {
    const Op& op = dag.op(id);
    if (op.kind != OpKind::kRowNum) continue;
    OrderExplanation::SortPoint p;
    p.op = id;
    p.label = OpToString(dag, id, strings_);
    p.source = op.prov;
    p.reasons = prov.ReasonsFor(id, op.col);
    out.sorts.push_back(std::move(p));
  }
  // The trade log now covers every rewrite family; --explain-order
  // surfaces only the % eliminations that actually made it into the plan
  // (strict certification keeps the old % when an obligation fails).
  CertifySettings resolved = ResolveCertify(options.certify);
  for (const RewriteTrade& t : plans.trades) {
    if (!t.order_trade || !Committed(t, resolved)) continue;
    OrderExplanation::Trade trade;
    trade.op = t.from;
    trade.label = OpToString(dag, t.from, strings_);
    trade.source = dag.op(t.from).prov;
    trade.rule = t.rule;
    trade.detail = t.detail;
    out.trades.push_back(std::move(trade));
  }
  std::map<OpId, std::vector<std::string>> annotations =
      ProvenanceAnnotations(dag, plans.optimized, prov);
  // Annotate the surviving replacements of traded %s with the trade's
  // justification (the eliminated % itself is no longer in the plan).
  for (const RewriteTrade& t : plans.trades) {
    if (!t.order_trade || !Committed(t, resolved)) continue;
    annotations[t.to].push_back("order traded (" + t.rule + "): " +
                                t.detail);
  }
  // Annotations for ops that did not survive later passes would confuse
  // the DOT rendering: restrict to the final plan.
  std::map<OpId, std::vector<std::string>> live;
  for (OpId id : dag.ReachableFrom(plans.optimized)) {
    auto it = annotations.find(id);
    if (it != annotations.end()) live.emplace(id, std::move(it->second));
  }
  out.dot = PlanToDot(dag, plans.optimized, strings_, live);
  return out;
}

Result<RewriteExplanation> Session::ExplainRewrites(
    std::string_view query, const QueryOptions& options) {
  EXRQUY_ASSIGN_OR_RETURN(QueryPlans plans, PlanInternal(query, options));
  const Dag& dag = *plans.dag;
  CertifySettings resolved = ResolveCertify(options.certify);
  RewriteExplanation out;
  std::map<OpId, std::vector<std::string>> annotations;
  for (const RewriteTrade& t : plans.trades) {
    RewriteExplanation::Entry e;
    e.from = t.from;
    e.to = t.to;
    e.rule = t.rule;
    e.detail = t.detail;
    e.label = OpToString(dag, t.from, strings_);
    e.source = dag.op(t.from).prov;
    for (const CitedFact& f : t.cited) e.facts.push_back(f.text);
    e.checked = t.checked;
    e.valid = t.valid;
    e.committed = Committed(t, resolved);
    e.obligation = t.obligation;
    e.diagnostic = t.diagnostic;
    ++out.emitted;
    if (t.checked && t.valid) ++out.validated;
    if (t.checked && !t.valid) ++out.rejected;
    std::string note = t.checked
                           ? (t.valid ? "certified (" + t.rule + ")"
                                      : "certificate FAILED [" +
                                            t.obligation + "] (" + t.rule +
                                            (e.committed ? ")"
                                                         : "), rewrite "
                                                           "kept out"))
                           : "uncertified (" + t.rule + ")";
    annotations[e.committed ? t.to : t.from].push_back(std::move(note));
    out.entries.push_back(std::move(e));
  }
  // Annotations for ops that did not survive later passes would confuse
  // the DOT rendering: restrict to the final plan.
  std::map<OpId, std::vector<std::string>> live;
  for (OpId id : dag.ReachableFrom(plans.optimized)) {
    auto it = annotations.find(id);
    if (it != annotations.end()) live.emplace(id, std::move(it->second));
  }
  out.dot = PlanToDot(dag, plans.optimized, strings_, live);
  return out;
}

namespace {

// Rolls the Session's shared state back to its pre-query snapshot on
// every exit path — success, compile error, runtime error, or governor
// abort. Constructed fragments and query-interned strings never outlive
// the Execute call (results hold plain std::strings), so a failing-query
// loop leaves the store and pool exactly where they started and the
// Session stays usable. Detaches the budget first so the rollback's
// Release calls don't hit an accountant that is about to go away with
// this frame anyway.
class SessionRestore {
 public:
  SessionRestore(NodeStore* store, StrPool* strings)
      : store_(store),
        strings_(strings),
        nodes_(store->node_count()),
        fragments_(store->fragment_count()),
        strs_(strings->size()) {}

  ~SessionRestore() {
    store_->set_budget(nullptr);
    strings_->set_budget(nullptr);
    store_->TruncateTo(nodes_, fragments_);
    strings_->TruncateTo(strs_);
  }

 private:
  NodeStore* store_;
  StrPool* strings_;
  size_t nodes_;
  size_t fragments_;
  size_t strs_;
};

// One cell of a witnessed column, rendered for byte-for-byte comparison.
// Nodes render by full serialization: the ids of constructed nodes
// legitimately differ between the two evaluations, their content must
// not.
std::string SpotCell(const Value& v, const NodeStore& store,
                     const StrPool& strings) {
  switch (v.kind) {
    case ValueKind::kInt:
      return "i:" + std::to_string(v.i);
    case ValueKind::kDouble:
      return "d:" + FormatDouble(v.d);
    case ValueKind::kString:
      return "s:" + strings.Get(v.str);
    case ValueKind::kUntyped:
      return "u:" + strings.Get(v.str);
    case ValueKind::kBool:
      return v.b ? "b:true" : "b:false";
    case ValueKind::kNode:
      return "n:" + SerializeNode(store, static_cast<NodeIdx>(v.node));
  }
  return "?";
}

Status SpotFail(const RewriteTrade& t, const std::string& detail) {
  return Internal("certify: [spot-check] " + t.rule + " op " +
                  std::to_string(t.from) + " -> op " + std::to_string(t.to) +
                  ": " + detail);
}

// The dynamic spot check: evaluates every committed rewrite's before and
// after sub-plans on this Session's documents and compares the exact
// witness columns byte-for-byte (as multisets when the rewrite is
// declared order-trading on the physical row order).
Status SpotCheckCertificates(const Dag& dag,
                             const std::vector<RewriteTrade>& trades,
                             const CertifySettings& resolved,
                             EvalContext* ctx) {
  for (const RewriteTrade& t : trades) {
    if (!Committed(t, resolved) || t.from == t.to) continue;
    std::vector<ColWitness> cols;
    for (const ColWitness& w : t.witness) {
      if (w.exact) cols.push_back(w);
    }
    if (cols.empty()) continue;
    Result<TablePtr> before = Evaluator(dag, ctx).Eval(t.from);
    Result<TablePtr> after = Evaluator(dag, ctx).Eval(t.to);
    if (!before.ok() && !after.ok()) continue;  // both raise: equivalent
    if (before.ok() != after.ok()) {
      return SpotFail(t, "error behavior diverges: before " +
                             (before.ok() ? std::string("succeeds")
                                          : before.status().message()) +
                             ", after " +
                             (after.ok() ? std::string("succeeds")
                                         : after.status().message()));
    }
    const Table& b = **before;
    const Table& a = **after;
    if (b.rows() != a.rows()) {
      return SpotFail(t, "row counts diverge: before " +
                             std::to_string(b.rows()) + ", after " +
                             std::to_string(a.rows()));
    }
    std::vector<std::string> brows(b.rows());
    std::vector<std::string> arows(a.rows());
    for (size_t r = 0; r < b.rows(); ++r) {
      for (const ColWitness& w : cols) {
        brows[r] +=
            SpotCell(b.at(w.before, r), *ctx->store, *ctx->strings) + '\x1f';
        arows[r] +=
            SpotCell(a.at(w.after, r), *ctx->store, *ctx->strings) + '\x1f';
      }
    }
    if (t.rows_reordered) {
      std::sort(brows.begin(), brows.end());
      std::sort(arows.begin(), arows.end());
    }
    for (size_t r = 0; r < brows.size(); ++r) {
      if (brows[r] != arows[r]) {
        return SpotFail(t, "witnessed values diverge at row " +
                               std::to_string(r) + ": before {" + brows[r] +
                               "}, after {" + arows[r] + "}");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Result<QueryResult> Session::Execute(std::string_view query,
                                     const QueryOptions& options) {
  QueryResult result;

  // Resolve the governor configuration: explicit options beat the
  // environment (EXRQUY_DEADLINE_MS / EXRQUY_MEM_BUDGET / EXRQUY_FAULT_*).
  Clock::time_point start = Clock::now();
  int64_t deadline_ms = options.deadline_ms > 0
                            ? options.deadline_ms
                            : static_cast<int64_t>(EnvU64("EXRQUY_DEADLINE_MS"));
  size_t budget_limit = options.memory_budget > 0
                            ? options.memory_budget
                            : static_cast<size_t>(EnvU64("EXRQUY_MEM_BUDGET"));
  FaultPlan faults = options.faults;
  if (!faults.any()) {
    EXRQUY_ASSIGN_OR_RETURN(faults, FaultPlan::FromEnv());
  }

  MemoryBudget budget(budget_limit);
  if (faults.fail_alloc != 0) budget.FailChargeAt(faults.fail_alloc);
  FaultInjector injector(faults);
  // Accounting costs a few atomic ops per charge site; only pay them when
  // someone will observe the numbers (a limit, an alloc fault, a profile).
  bool account =
      budget_limit != 0 || faults.fail_alloc != 0 || options.profile;

  SessionRestore restore(&store_, &strings_);
  if (account) {
    store_.set_budget(&budget);
    strings_.set_budget(&budget);
  }

  EXRQUY_ASSIGN_OR_RETURN(QueryPlans plans, PlanInternal(query, options));
  result.compile_ms = MsSince(start);

  result.plan_initial = CollectPlanStats(*plans.dag, plans.initial);
  result.plan_optimized = CollectPlanStats(*plans.dag, plans.optimized);

  // Dynamic spot check: re-evaluate every committed rewrite's before and
  // after sub-plans on a fresh, ungoverned context (no deadline, faults,
  // or profile — those belong to the real run) and compare witnesses.
  CertifySettings resolved_certify = ResolveCertify(options.certify);
  if (resolved_certify.mode != CertifyMode::kOff && resolved_certify.spot_check) {
    EvalContext sctx;
    sctx.store = &store_;
    sctx.strings = &strings_;
    sctx.documents = documents_;
    sctx.num_threads = 1;
    EXRQUY_RETURN_IF_ERROR(SpotCheckCertificates(*plans.dag, plans.trades,
                                                 resolved_certify, &sctx));
  }

  EvalContext ctx;
  ctx.store = &store_;
  ctx.strings = &strings_;
  ctx.documents = documents_;
  ctx.detect_sorted_inputs = options.physical_sort_detection;
  ctx.num_threads = options.num_threads;
  ctx.chunk_rows = options.chunk_rows;
  ctx.release_intermediates = options.release_intermediates;
  ctx.pipelined_execution = options.pipelined_execution;
  ctx.morsel_rows = options.morsel_rows;
  ctx.inline_rows = options.inline_rows;
  if (options.profile) ctx.profile = &result.profile;
  ctx.cancel = options.cancel.get();
  if (deadline_ms > 0) {
    ctx.has_deadline = true;
    ctx.deadline = start + std::chrono::milliseconds(deadline_ms);
  }
  if (account) ctx.budget = &budget;
  if (faults.any()) ctx.faults = &injector;

  Clock::time_point t1 = Clock::now();
  Evaluator evaluator(*plans.dag, &ctx);
  Result<TablePtr> table = evaluator.Eval(plans.optimized);
  if (options.profile) {
    result.profile.SetBudget(budget.limit(), budget.charged(), budget.peak());
  }
  if (!table.ok()) return table.status();
  result.execute_ms = MsSince(t1);
  result.sorts_skipped = ctx.sorts_skipped;

  Result<std::string> serialized = SerializeResult(**table, ctx);
  Result<std::vector<std::string>> items = ResultItems(**table, ctx);
  if (!serialized.ok()) return serialized.status();
  if (!items.ok()) return items.status();
  result.serialized = std::move(serialized).value();
  result.items = std::move(items).value();
  return result;
}

}  // namespace exrquy
