#include "engine/profile.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace exrquy {

void Profile::Record(const Op& op, double ms, size_t out_rows) {
  total_ms_ += ms;
  Bucket& p = by_prov_[op.prov.empty() ? "(unlabeled)" : op.prov];
  p.ms += ms;
  p.ops += 1;
  p.out_rows += out_rows;
  Bucket& k = by_kind_[OpKindName(op.kind)];
  k.ms += ms;
  k.ops += 1;
  k.out_rows += out_rows;
}

std::string Profile::ToString() const {
  std::vector<std::pair<std::string, Bucket>> rows(by_prov_.begin(),
                                                   by_prov_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.ms > b.second.ms;
  });
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-58s %10s %6s %12s\n", "sub-expression",
                "time [ms]", "%", "rows");
  out += buf;
  for (const auto& [label, b] : rows) {
    double pct = total_ms_ > 0 ? 100.0 * b.ms / total_ms_ : 0;
    std::snprintf(buf, sizeof(buf), "%-58s %10.2f %5.1f%% %12zu\n",
                  label.c_str(), b.ms, pct, b.out_rows);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-58s %10.2f\n", "total", total_ms_);
  out += buf;
  return out;
}

}  // namespace exrquy
