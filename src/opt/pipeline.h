// The optimization pipeline: column dependency analysis + rewrites,
// iterated to a fixpoint (pruning exposes more pruning, e.g. removing a
// % makes two location steps adjacent and mergeable).
#ifndef EXRQUY_OPT_PIPELINE_H_
#define EXRQUY_OPT_PIPELINE_H_

#include "algebra/algebra.h"
#include "common/status.h"
#include "opt/rewrites.h"

namespace exrquy {

struct OptimizeOptions {
  // Master switch; when false the emitted plan runs as-is (the paper's
  // baseline configuration).
  bool enable = true;
  RewriteOptions rewrites;
  int max_passes = 8;

  // Re-verifies the plan (opt/verify.h, all checks) after every rewrite
  // pass. When a pass breaks an invariant the pass is replayed one
  // rewrite family at a time so the failure names the first offending
  // rewrite; the diagnostic carries a dot graph of the bad plan when
  // `strings` is set. The good path is unaffected: passes still apply
  // all rewrites combined, so verification never changes the plan.
  bool verify_each_pass = false;
  const StrPool* strings = nullptr;  // for dot dumps in failure reports

  // When non-null, every % the rewrite passes eliminated is appended
  // with the rule that fired and its justification (rewrites.h), for
  // Session::ExplainOrder / --explain-order.
  std::vector<RewriteTrade>* trade_log = nullptr;
};

// Returns the new plan root (ops are appended to the same DAG; use
// ReachableFrom/CollectPlanStats on the returned root), or the first
// verifier diagnostic when `verify_each_pass` catches a bad rewrite.
Result<OpId> Optimize(Dag* dag, OpId root, const OptimizeOptions& options);

}  // namespace exrquy

#endif  // EXRQUY_OPT_PIPELINE_H_
