file(REMOVE_RECURSE
  "CMakeFiles/exrquy_xml.dir/xml/node_store.cc.o"
  "CMakeFiles/exrquy_xml.dir/xml/node_store.cc.o.d"
  "CMakeFiles/exrquy_xml.dir/xml/serializer.cc.o"
  "CMakeFiles/exrquy_xml.dir/xml/serializer.cc.o.d"
  "CMakeFiles/exrquy_xml.dir/xml/step.cc.o"
  "CMakeFiles/exrquy_xml.dir/xml/step.cc.o.d"
  "CMakeFiles/exrquy_xml.dir/xml/xml_parser.cc.o"
  "CMakeFiles/exrquy_xml.dir/xml/xml_parser.cc.o.d"
  "libexrquy_xml.a"
  "libexrquy_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exrquy_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
