// Differential validation on the real workload: every XMark benchmark
// query evaluated by the independent reference interpreter and by the
// compiled pipeline (baseline, ordered mode) over a small generated
// instance — exact sequence equality required (multiset for Q10, whose
// distinct-values order is implementation defined only in how ties of
// equal sort keys break).
#include <gtest/gtest.h>

#include <algorithm>

#include "api/session.h"
#include "ref/interp.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xquery/normalize.h"
#include "xquery/parser.h"

namespace exrquy {
namespace {

class ReferenceXMarkTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.002;
    ASSERT_TRUE(
        session_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static Result<std::vector<std::string>> RunRef(const std::string& query) {
    EXRQUY_ASSIGN_OR_RETURN(Query parsed, ParseQuery(query));
    NormalizeOptions norm;
    norm.insert_unordered = false;
    EXRQUY_RETURN_IF_ERROR(Normalize(&parsed, norm));
    std::map<StrId, NodeIdx> docs;
    docs[session_->strings().Intern("auction.xml")] =
        session_->store().fragment(0).root;
    RefInterpreter interp(&session_->store(), &session_->strings(), docs);
    EXRQUY_ASSIGN_OR_RETURN(std::vector<Value> items,
                            interp.Eval(*parsed.body));
    return interp.Render(items);
  }

  static Session* session_;
};

Session* ReferenceXMarkTest::session_ = nullptr;

TEST_P(ReferenceXMarkTest, CompiledMatchesReference) {
  const XMarkQuery& q = XMarkQueries()[GetParam()];
  QueryOptions baseline;
  baseline.enable_order_indifference = false;
  Result<QueryResult> compiled = session_->Execute(q.text, baseline);
  Result<std::vector<std::string>> ref = RunRef(q.text);
  ASSERT_TRUE(compiled.ok()) << q.name << ": "
                             << compiled.status().ToString();
  ASSERT_TRUE(ref.ok()) << q.name << ": " << ref.status().ToString();
  if (q.name == "Q10") {
    std::vector<std::string> a = compiled->items;
    std::vector<std::string> b = *ref;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << q.name;
  } else {
    EXPECT_EQ(compiled->items, *ref) << q.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ReferenceXMarkTest,
                         ::testing::Range(0, 20),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return XMarkQueries()[info.param].name;
                         });

}  // namespace
}  // namespace exrquy
