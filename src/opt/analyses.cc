#include "opt/analyses.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace exrquy {

// ---------------------------------------------------------------------------
// Column liveness: backward set-union analysis. The transfer edges are
// the demand rules of Figure 8 — exactly the edges the one-shot walk in
// the verifier's independent re-derivation uses (opt/verify.cc), which
// cross-checks this implementation on every verified plan.
// ---------------------------------------------------------------------------

namespace {

struct LivenessAnalysis {
  using Fact = ColSet;

  Fact Bottom(const Dag&, OpId) const { return {}; }

  bool Join(Fact* into, const Fact& from) const {
    bool changed = false;
    for (ColId c : from) changed |= into->insert(c).second;
    return changed;
  }

  void Transfer(const Dag& dag, OpId id, const Fact& r,
                std::vector<Fact>* out) const {
    const Op& op = dag.op(id);
    // Demands a specific column of child `child` (unconditionally: the
    // verifier audits that demanded columns are producible).
    auto need = [&](size_t child, ColId c) {
      if (c == kNoCol) return;
      EXRQUY_DCHECK(dag.op(op.children[child]).HasCol(c));
      (*out)[child].insert(c);
    };
    // Passes the upstream demand through to child `child`, restricted to
    // the columns that child produces.
    auto need_set = [&](size_t child, const ColSet& cols) {
      const Op& ch = dag.op(op.children[child]);
      for (ColId c : cols) {
        if (ch.HasCol(c)) (*out)[child].insert(c);
      }
    };

    switch (op.kind) {
      case OpKind::kLit:
      case OpKind::kDoc:
        break;
      case OpKind::kProject:
        for (const auto& [n, o] : op.proj) {
          if (r.count(n) != 0) need(0, o);
        }
        break;
      case OpKind::kSelect:
        need_set(0, r);
        need(0, op.col);
        break;
      case OpKind::kEquiJoin:
        need_set(0, r);
        need_set(1, r);
        need(0, op.col);
        need(1, op.col2);
        break;
      case OpKind::kCross:
        need_set(0, r);
        need_set(1, r);
        break;
      case OpKind::kUnion:
        need_set(0, r);
        need_set(1, r);
        break;
      case OpKind::kDifference:
      case OpKind::kSemiJoin:
        need_set(0, r);
        for (ColId k : op.keys) {
          need(0, k);
          need(1, k);
        }
        break;
      case OpKind::kDistinct: {
        // Duplicate elimination depends on every input column.
        for (ColId c : dag.op(op.children[0]).schema) need(0, c);
        break;
      }
      case OpKind::kRowNum: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        for (const SortKey& k : op.order) need(0, k.col);
        need(0, op.part);
        break;
      }
      case OpKind::kRowId: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        break;
      }
      case OpKind::kFun: {
        ColSet pass = r;
        pass.erase(op.col);
        need_set(0, pass);
        for (ColId a : op.args) need(0, a);
        break;
      }
      case OpKind::kAggr:
        need(0, op.col2);
        need(0, op.part);
        for (ColId k : op.keys) need(0, k);
        break;
      case OpKind::kStep:
        need(0, col::iter());
        need(0, col::item());
        break;
      case OpKind::kElem:
      case OpKind::kAttr:
      case OpKind::kTextNode:
        need(0, col::iter());
        need(0, col::pos());
        need(0, col::item());
        need(1, col::iter());
        break;
      case OpKind::kRange:
        need(0, col::iter());
        need(0, op.col);
        need(0, op.col2);
        break;
      case OpKind::kCardCheck:
        need_set(0, r);
        need(0, col::iter());
        need(1, col::iter());
        break;
    }
  }
};

}  // namespace

std::unordered_map<OpId, ColSet> ComputeICols(const Dag& dag, OpId root,
                                              const ColSet& seed) {
  BackwardDataflow<LivenessAnalysis> engine(&dag);
  return engine.Solve(root, seed);
}

std::unordered_map<OpId, uint32_t> ConsumerCounts(const Dag& dag, OpId root) {
  std::unordered_map<OpId, uint32_t> counts;
  for (OpId id : dag.ReachableFrom(root)) {
    counts.try_emplace(id, 0);
    for (OpId c : dag.op(id).children) ++counts[c];
  }
  ++counts[root];
  return counts;
}

// ---------------------------------------------------------------------------
// Constant / arbitrary-order columns: forward analysis. The transfer is
// the per-operator rule set the old PropertyTracker applied in its
// memoized bottom-up walk, unchanged (and deliberately without the
// single-row saturation the verifier's independent derivation performs —
// the claims must stay a subset of the derivable facts, not equal).
// ---------------------------------------------------------------------------

ColProps ConstArbAnalysis::Bottom(const Dag&, OpId) const { return {}; }

bool ConstArbAnalysis::Join(ColProps* into, const ColProps& from) const {
  bool changed = false;
  for (ColId c : from.constant) changed |= into->constant.insert(c).second;
  for (ColId c : from.arbitrary) changed |= into->arbitrary.insert(c).second;
  return changed;
}

ColProps ConstArbAnalysis::Transfer(
    const Dag& dag, OpId id, const std::vector<const ColProps*>& in) const {
  const Op& op = dag.op(id);
  ColProps out;
  auto child = [&](size_t i) -> const ColProps& { return *in[i]; };
  auto inherit = [&](const ColProps& p) {
    for (ColId c : p.constant) {
      if (op.HasCol(c)) out.constant.insert(c);
    }
    for (ColId c : p.arbitrary) {
      if (op.HasCol(c)) out.arbitrary.insert(c);
    }
  };

  switch (op.kind) {
    case OpKind::kLit: {
      for (size_t i = 0; i < op.lit.cols.size(); ++i) {
        bool constant = true;
        for (size_t r = 1; r < op.lit.rows.size(); ++r) {
          if (!(op.lit.rows[r][i] == op.lit.rows[0][i])) {
            constant = false;
            break;
          }
        }
        if (constant) out.constant.insert(op.lit.cols[i]);
      }
      break;
    }
    case OpKind::kProject: {
      const ColProps& p = child(0);
      for (const auto& [n, o] : op.proj) {
        if (p.constant.count(o) != 0) out.constant.insert(n);
        if (p.arbitrary.count(o) != 0) out.arbitrary.insert(n);
      }
      break;
    }
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
    case OpKind::kCardCheck:
      inherit(child(0));
      break;
    case OpKind::kEquiJoin:
    case OpKind::kCross:
      inherit(child(0));
      inherit(child(1));
      break;
    case OpKind::kUnion: {
      // A column stays constant only if both branches are constant with
      // the same value — value tracking is out of scope, so constancy is
      // dropped; arbitrariness survives if both branches are arbitrary.
      const ColProps& a = child(0);
      const ColProps& b = child(1);
      for (ColId c : a.arbitrary) {
        if (b.arbitrary.count(c) != 0) out.arbitrary.insert(c);
      }
      break;
    }
    case OpKind::kRowNum:
      inherit(child(0));
      // The produced rank is meaningful (unless its criteria were
      // arbitrary — but then the rewriter turns the op into # anyway).
      break;
    case OpKind::kRowId:
      inherit(child(0));
      out.arbitrary.insert(op.col);
      break;
    case OpKind::kFun: {
      inherit(child(0));
      out.constant.erase(op.col);
      out.arbitrary.erase(op.col);
      bool all_const = true;
      for (ColId a : op.args) {
        if (child(0).constant.count(a) == 0) all_const = false;
      }
      if (all_const) out.constant.insert(op.col);
      break;
    }
    case OpKind::kAggr: {
      const ColProps& p = child(0);
      if (op.part != kNoCol) {
        if (p.constant.count(op.part) != 0) out.constant.insert(op.part);
        if (p.arbitrary.count(op.part) != 0) out.arbitrary.insert(op.part);
      }
      break;
    }
    case OpKind::kRange:
    case OpKind::kStep:
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode: {
      // The iter column descends from the context/loop input (child 0 for
      // steps and ranges, child 1 — the loop — for constructors).
      bool from_first =
          op.kind == OpKind::kStep || op.kind == OpKind::kRange;
      const ColProps& p = child(from_first ? 0 : 1);
      if (p.constant.count(col::iter()) != 0) {
        out.constant.insert(col::iter());
      }
      if (p.arbitrary.count(col::iter()) != 0) {
        out.arbitrary.insert(col::iter());
      }
      break;
    }
    case OpKind::kDoc:
      out.constant.insert(col::item());
      break;
  }
  return out;
}

const ColProps& PropertyTracker::Get(OpId id) { return engine_.Get(id); }

// ---------------------------------------------------------------------------
// Cardinality intervals.
// ---------------------------------------------------------------------------

namespace {

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a == kUnboundedRows || b == kUnboundedRows) return kUnboundedRows;
  uint64_t s = a + b;
  return s < a ? kUnboundedRows : s;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnboundedRows || b == kUnboundedRows) return kUnboundedRows;
  if (a > kUnboundedRows / b) return kUnboundedRows;
  return a * b;
}

}  // namespace

std::string CardRange::ToString() const {
  std::string lo = min == kUnboundedRows ? "inf" : std::to_string(min);
  std::string hi = max == kUnboundedRows ? "inf" : std::to_string(max);
  return "[" + lo + "," + hi + "]";
}

CardRange CardAnalysis::Bottom(const Dag&, OpId) const { return {}; }

bool CardAnalysis::Join(CardRange* into, const CardRange& from) const {
  bool changed = false;
  if (from.min < into->min) {
    into->min = from.min;
    changed = true;
  }
  if (from.max > into->max) {
    into->max = from.max;
    changed = true;
  }
  return changed;
}

CardRange CardAnalysis::Transfer(
    const Dag& dag, OpId id, const std::vector<const CardRange*>& in) const {
  const Op& op = dag.op(id);
  auto child = [&](size_t i) -> const CardRange& { return *in[i]; };
  CardRange out;
  switch (op.kind) {
    case OpKind::kLit:
      out.min = out.max = op.lit.rows.size();
      break;
    case OpKind::kProject:
    case OpKind::kRowNum:
    case OpKind::kRowId:
    case OpKind::kFun:
    case OpKind::kCardCheck:
      out = child(0);
      break;
    case OpKind::kSelect:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
      out.min = 0;
      out.max = child(0).max;
      break;
    case OpKind::kDistinct:
      out.min = child(0).min > 0 ? 1 : 0;
      out.max = child(0).max;
      break;
    case OpKind::kEquiJoin:
      out.min = 0;
      out.max = SatMul(child(0).max, child(1).max);
      break;
    case OpKind::kCross:
      out.min = SatMul(child(0).min, child(1).min);
      out.max = SatMul(child(0).max, child(1).max);
      break;
    case OpKind::kUnion:
      out.min = SatAdd(child(0).min, child(1).min);
      out.max = SatAdd(child(0).max, child(1).max);
      break;
    case OpKind::kAggr:
      if (op.part == kNoCol) {
        // The whole table is one group, and the engine emits that group
        // even for an empty input (count() = 0, EBV = false, ...).
        out.min = out.max = 1;
      } else {
        out.min = child(0).min > 0 ? 1 : 0;
        out.max = child(0).max;
      }
      break;
    case OpKind::kStep:
    case OpKind::kRange:
      // Arbitrary fan-out per context row; empty context stays empty.
      out.min = 0;
      out.max = child(0).max == 0 ? 0 : kUnboundedRows;
      break;
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode:
      // One constructed node per row of the loop relation (child 1).
      out = child(1);
      break;
    case OpKind::kDoc:
      out.min = out.max = 1;
      break;
  }
  return out;
}

const CardRange& CardTracker::Get(OpId id) { return engine_.Get(id); }

// ---------------------------------------------------------------------------
// Key columns.
// ---------------------------------------------------------------------------

ColSet KeyAnalysis::Bottom(const Dag&, OpId) const { return {}; }

bool KeyAnalysis::Join(ColSet* into, const ColSet& from) const {
  bool changed = false;
  for (ColId c : from) changed |= into->insert(c).second;
  return changed;
}

ColSet KeyAnalysis::Transfer(const Dag& dag, OpId id,
                             const std::vector<const ColSet*>& in) const {
  const Op& op = dag.op(id);
  auto child = [&](size_t i) -> const ColSet& { return *in[i]; };
  auto at_most_one = [&](size_t i) {
    return cards->Get(op.children[i]).max <= 1;
  };
  ColSet out;
  // Keys of a child that survive into this operator's schema.
  auto inherit = [&](const ColSet& k) {
    for (ColId c : op.schema) {
      if (k.count(c) != 0) out.insert(c);
    }
  };

  switch (op.kind) {
    case OpKind::kLit: {
      size_t n = op.lit.rows.size();
      for (size_t i = 0; i < op.lit.cols.size(); ++i) {
        bool distinct = true;
        for (size_t r = 0; r < n && distinct; ++r) {
          for (size_t r2 = r + 1; r2 < n; ++r2) {
            if (op.lit.rows[r][i] == op.lit.rows[r2][i]) {
              distinct = false;
              break;
            }
          }
        }
        if (distinct) out.insert(op.lit.cols[i]);
      }
      break;
    }
    case OpKind::kProject:
      for (const auto& [n, o] : op.proj) {
        if (child(0).count(o) != 0) out.insert(n);
      }
      break;
    // Row subsets: distinct values stay distinct.
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
    case OpKind::kCardCheck:
      inherit(child(0));
      break;
    case OpKind::kEquiJoin:
    case OpKind::kCross: {
      // A side's keys survive when each of its rows appears at most
      // once: the other side contributes at most one match per row.
      bool left_once;
      bool right_once;
      if (op.kind == OpKind::kEquiJoin) {
        left_once = child(1).count(op.col2) != 0 || at_most_one(1);
        right_once = child(0).count(op.col) != 0 || at_most_one(0);
      } else {
        left_once = at_most_one(1);
        right_once = at_most_one(0);
      }
      if (left_once) inherit(child(0));
      if (right_once) inherit(child(1));
      break;
    }
    case OpKind::kUnion: {
      // Cross-branch value reasoning is out of scope; only a statically
      // empty branch preserves the other branch's keys.
      if (cards->Get(op.children[0]).max == 0) {
        inherit(child(1));
      } else if (cards->Get(op.children[1]).max == 0) {
        inherit(child(0));
      }
      break;
    }
    case OpKind::kRowNum:
      inherit(child(0));
      // A dense numbering over the whole table identifies rows; within
      // partitions it repeats across groups.
      if (op.part == kNoCol) out.insert(op.col);
      break;
    case OpKind::kRowId:
      inherit(child(0));
      out.insert(op.col);
      break;
    case OpKind::kFun:
      inherit(child(0));
      break;
    case OpKind::kAggr:
      if (op.part != kNoCol) out.insert(op.part);  // one row per group
      break;
    case OpKind::kStep:
      // Document structure: every node has exactly one parent, at most
      // one attribute of a given name, and belongs to exactly one
      // element's attribute list.
      switch (op.axis) {
        case Axis::kSelf:  // a row subset of the (iter, item) context
          inherit(child(0));
          break;
        case Axis::kParent:  // at most one output row per context row
          if (child(0).count(col::iter()) != 0) out.insert(col::iter());
          break;
        case Axis::kChild:  // distinct parents have disjoint children
          if (child(0).count(col::item()) != 0) out.insert(col::item());
          break;
        case Axis::kAttribute:
          // Attributes of distinct elements are distinct nodes; a name
          // test additionally caps the fan-out at one row per context.
          if (child(0).count(col::item()) != 0) out.insert(col::item());
          if (op.test.kind == NodeTest::Kind::kName &&
              child(0).count(col::iter()) != 0) {
            out.insert(col::iter());
          }
          break;
        default:
          // Descendant/ancestor/sibling subtrees of distinct context
          // nodes can overlap: no keys survive.
          break;
      }
      break;
    case OpKind::kRange:
      break;
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode:
      if (child(1).count(col::iter()) != 0) out.insert(col::iter());
      out.insert(col::item());  // distinct node identities
      break;
    case OpKind::kDoc:
      break;  // single-row saturation below covers it
  }
  // Everything is a key of a relation with at most one row.
  if (cards->Get(id).max <= 1) {
    for (ColId c : op.schema) out.insert(c);
  }
  return out;
}

const ColSet& KeyTracker::Get(OpId id) { return engine_.Get(id); }

// ---------------------------------------------------------------------------
// Error capability.
// ---------------------------------------------------------------------------

bool RaiseAnalysis::Bottom(const Dag&, OpId) const { return false; }

bool RaiseAnalysis::Join(bool* into, const bool& from) const {
  if (from && !*into) {
    *into = true;
    return true;
  }
  return false;
}

bool RaiseAnalysis::Transfer(const Dag& dag, OpId id,
                             const std::vector<const bool*>& in) const {
  for (const bool* c : in) {
    if (*c) return true;
  }
  const Op& op = dag.op(id);
  switch (op.kind) {
    case OpKind::kDoc:
      return true;  // unknown document name
    case OpKind::kCardCheck:
      return true;  // can fire even on an empty input (min_card > 0)
    case OpKind::kRange:
      // Non-integer or oversized bounds — per input row.
      return cards->Get(op.children[0]).max > 0;
    case OpKind::kFun:
      // Casts, arithmetic on non-numerics, division by zero,
      // incomparable comparisons — all per input row. Treating every
      // function as error-capable is conservative but only ever blocks
      // a rewrite.
      return cards->Get(op.children[0]).max > 0;
    case OpKind::kAggr:
      switch (op.aggr) {
        case AggrKind::kSum:
        case AggrKind::kMax:
        case AggrKind::kMin:
        case AggrKind::kAvg:
          return true;  // type errors; avg/min/max of an empty group
        default:
          return false;
      }
    default:
      return false;
  }
}

bool RaiseTracker::Get(OpId id) { return engine_.Get(id); }

// ---------------------------------------------------------------------------
// Order provenance.
// ---------------------------------------------------------------------------

namespace {

// Classifies the internal consumption of a column by `consumer` as a
// human-readable reason, carrying the consumer's source expression.
std::string ReasonLabel(const Dag& dag, OpId consumer,
                        const StrPool* strings) {
  const Op& op = dag.op(consumer);
  std::string what;
  auto named = [&](StrId s) {
    return strings != nullptr ? strings->Get(s) : std::string("?");
  };
  switch (op.kind) {
    case OpKind::kRowNum:
      what = "sort/grouping criteria of % (row numbering)";
      break;
    case OpKind::kSelect:
      what = "row filter";
      break;
    case OpKind::kEquiJoin:
      what = "join condition";
      break;
    case OpKind::kDifference:
      what = "anti-join keys";
      break;
    case OpKind::kSemiJoin:
      what = "semi-join keys";
      break;
    case OpKind::kDistinct:
      what = "duplicate elimination";
      break;
    case OpKind::kFun:
      what = std::string("argument of ") + FunKindName(op.fun);
      break;
    case OpKind::kAggr:
      if (op.aggr == AggrKind::kStrJoin && !op.keys.empty()) {
        what = "order-sensitive aggregation (string-join)";
      } else {
        what = std::string("aggregation ") + AggrKindName(op.aggr);
      }
      break;
    case OpKind::kStep:
      what = std::string("location step context (") + AxisName(op.axis) +
             (strings != nullptr
                  ? "::" + NodeTestToString(op.test, *strings)
                  : std::string()) +
             ")";
      break;
    case OpKind::kElem:
      what = "element constructor <" + named(op.name) +
             "> (content in sequence order)";
      break;
    case OpKind::kAttr:
      what = "attribute constructor @" + named(op.name);
      break;
    case OpKind::kTextNode:
      what = "text node constructor (content in sequence order)";
      break;
    case OpKind::kRange:
      what = "range bounds ('to')";
      break;
    case OpKind::kCardCheck:
      what = "cardinality check fn:" + named(op.name);
      break;
    default:
      what = std::string("consumed by ") + OpKindName(op.kind);
      break;
  }
  if (!op.prov.empty()) what += " -- " + op.prov;
  return what;
}

// Mirrors LivenessAnalysis edge-for-edge, attaching a reason wherever a
// column is consumed by the operator itself (need) and copying reasons
// wherever demand merely passes through (need_set / Project). Because
// every inserted column carries at least one reason, the demanded
// column sets coincide exactly with ComputeICols — which the verifier
// checks.
struct ProvenanceAnalysis {
  using Fact = std::map<ColId, std::set<uint32_t>>;

  const Dag* dag = nullptr;
  const StrPool* strings = nullptr;
  std::vector<OrderReason>* reasons = nullptr;
  std::map<OpId, uint32_t>* intern = nullptr;

  uint32_t Reason(OpId consumer) const {
    auto it = intern->find(consumer);
    if (it != intern->end()) return it->second;
    uint32_t id = static_cast<uint32_t>(reasons->size());
    reasons->push_back({consumer, ReasonLabel(*dag, consumer, strings)});
    intern->emplace(consumer, id);
    return id;
  }

  Fact Bottom(const Dag&, OpId) const { return {}; }

  bool Join(Fact* into, const Fact& from) const {
    bool changed = false;
    for (const auto& [c, rs] : from) {
      std::set<uint32_t>& dst = (*into)[c];
      for (uint32_t r : rs) changed |= dst.insert(r).second;
    }
    return changed;
  }

  void Transfer(const Dag& dg, OpId id, const Fact& r,
                std::vector<Fact>* out) const {
    const Op& op = dg.op(id);
    auto need = [&](size_t child, ColId c) {
      if (c == kNoCol) return;
      (*out)[child][c].insert(Reason(id));
    };
    auto pass = [&](size_t child, const Fact& f) {
      const Op& ch = dg.op(op.children[child]);
      for (const auto& [c, rs] : f) {
        if (ch.HasCol(c)) (*out)[child][c].insert(rs.begin(), rs.end());
      }
    };

    switch (op.kind) {
      case OpKind::kLit:
      case OpKind::kDoc:
        break;
      case OpKind::kProject:
        for (const auto& [n, o] : op.proj) {
          auto it = r.find(n);
          if (it != r.end()) {
            (*out)[0][o].insert(it->second.begin(), it->second.end());
          }
        }
        break;
      case OpKind::kSelect:
        pass(0, r);
        need(0, op.col);
        break;
      case OpKind::kEquiJoin:
        pass(0, r);
        pass(1, r);
        need(0, op.col);
        need(1, op.col2);
        break;
      case OpKind::kCross:
      case OpKind::kUnion:
        pass(0, r);
        pass(1, r);
        break;
      case OpKind::kDifference:
      case OpKind::kSemiJoin:
        pass(0, r);
        for (ColId k : op.keys) {
          need(0, k);
          need(1, k);
        }
        break;
      case OpKind::kDistinct:
        for (ColId c : dg.op(op.children[0]).schema) need(0, c);
        break;
      case OpKind::kRowNum: {
        Fact p = r;
        p.erase(op.col);
        pass(0, p);
        for (const SortKey& k : op.order) need(0, k.col);
        need(0, op.part);
        break;
      }
      case OpKind::kRowId: {
        Fact p = r;
        p.erase(op.col);
        pass(0, p);
        break;
      }
      case OpKind::kFun: {
        Fact p = r;
        p.erase(op.col);
        pass(0, p);
        for (ColId a : op.args) need(0, a);
        break;
      }
      case OpKind::kAggr:
        need(0, op.col2);
        need(0, op.part);
        for (ColId k : op.keys) need(0, k);
        break;
      case OpKind::kStep:
        need(0, col::iter());
        need(0, col::item());
        break;
      case OpKind::kElem:
      case OpKind::kAttr:
      case OpKind::kTextNode:
        need(0, col::iter());
        need(0, col::pos());
        need(0, col::item());
        need(1, col::iter());
        break;
      case OpKind::kRange:
        need(0, col::iter());
        need(0, op.col);
        need(0, op.col2);
        break;
      case OpKind::kCardCheck:
        pass(0, r);
        need(0, col::iter());
        need(1, col::iter());
        break;
    }
  }
};

}  // namespace

std::vector<std::string> OrderProvenance::ReasonsFor(OpId id,
                                                     ColId col) const {
  std::vector<std::string> out;
  auto it = demand.find(id);
  if (it == demand.end()) return out;
  auto cit = it->second.find(col);
  if (cit == it->second.end()) return out;
  for (uint32_t r : cit->second) {
    if (r < reasons.size()) out.push_back(reasons[r].label);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

OrderProvenance ComputeOrderProvenance(const Dag& dag, OpId root,
                                       const ColSet& seed,
                                       const StrPool* strings) {
  OrderProvenance out;
  std::map<OpId, uint32_t> intern;
  ProvenanceAnalysis analysis{&dag, strings, &out.reasons, &intern};
  // The root demand: the query result is serialized in sequence order.
  uint32_t serialize = static_cast<uint32_t>(out.reasons.size());
  out.reasons.push_back(
      {kNoOp, "result serialization (the query result is delivered in "
              "sequence order)"});
  ProvenanceAnalysis::Fact seed_fact;
  for (ColId c : seed) seed_fact[c].insert(serialize);
  BackwardDataflow<ProvenanceAnalysis> engine(&dag, analysis);
  out.demand = engine.Solve(root, seed_fact);
  return out;
}

std::map<OpId, std::vector<std::string>> ProvenanceAnnotations(
    const Dag& dag, OpId root, const OrderProvenance& prov) {
  std::map<OpId, std::vector<std::string>> out;
  for (OpId id : dag.ReachableFrom(root)) {
    const Op& op = dag.op(id);
    if (op.kind != OpKind::kRowNum) continue;
    std::vector<std::string> lines = prov.ReasonsFor(id, op.col);
    if (lines.empty()) {
      lines.push_back("rank never consumed (removable by column pruning)");
    }
    for (std::string& l : lines) l = "ordered because: " + l;
    out.emplace(id, std::move(lines));
  }
  return out;
}

}  // namespace exrquy
