# Empty dependencies file for exrquy_engine.
# This may be replaced when dependencies are built.
