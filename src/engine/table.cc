#include "engine/table.h"

#include <algorithm>

namespace exrquy {

bool Table::HasCol(ColId c) const {
  return std::find(cols_.begin(), cols_.end(), c) != cols_.end();
}

size_t Table::ColIndex(ColId c) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i] == c) return i;
  }
  EXRQUY_CHECK(false && "column not found");
  return 0;
}

void Table::AddColumn(ColId c, ColumnPtr data) {
  EXRQUY_CHECK(!HasCol(c));
  if (cols_.empty()) {
    rows_ = data->size();
  } else {
    EXRQUY_CHECK(data->size() == rows_);
  }
  cols_.push_back(c);
  data_.push_back(std::move(data));
}

void Table::AddColumn(ColId c, Column data) {
  AddColumn(c, std::make_shared<const Column>(std::move(data)));
}

size_t Table::ByteSize() const {
  size_t bytes = 0;
  for (size_t i = 0; i < data_.size(); ++i) {
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (data_[j] == data_[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) bytes += ColumnBytes(*data_[i]);
  }
  return bytes;
}

}  // namespace exrquy
