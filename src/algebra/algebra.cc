#include "algebra/algebra.h"

#include <algorithm>

#include "common/check.h"

namespace exrquy {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kLit:
      return "Lit";
    case OpKind::kProject:
      return "Project";
    case OpKind::kSelect:
      return "Select";
    case OpKind::kEquiJoin:
      return "EquiJoin";
    case OpKind::kThetaJoin:
      return "ThetaJoin";
    case OpKind::kCross:
      return "Cross";
    case OpKind::kUnion:
      return "Union";
    case OpKind::kDifference:
      return "Difference";
    case OpKind::kSemiJoin:
      return "SemiJoin";
    case OpKind::kDistinct:
      return "Distinct";
    case OpKind::kRowNum:
      return "RowNum";
    case OpKind::kRowId:
      return "RowId";
    case OpKind::kFun:
      return "Fun";
    case OpKind::kAggr:
      return "Aggr";
    case OpKind::kStep:
      return "Step";
    case OpKind::kDoc:
      return "Doc";
    case OpKind::kElem:
      return "Elem";
    case OpKind::kAttr:
      return "Attr";
    case OpKind::kTextNode:
      return "TextNode";
    case OpKind::kRange:
      return "Range";
    case OpKind::kCardCheck:
      return "CardCheck";
  }
  return "?";
}

const char* FunKindName(FunKind kind) {
  switch (kind) {
    case FunKind::kAdd:
      return "add";
    case FunKind::kSub:
      return "sub";
    case FunKind::kMul:
      return "mul";
    case FunKind::kDiv:
      return "div";
    case FunKind::kIDiv:
      return "idiv";
    case FunKind::kMod:
      return "mod";
    case FunKind::kNeg:
      return "neg";
    case FunKind::kEq:
      return "eq";
    case FunKind::kNe:
      return "ne";
    case FunKind::kLt:
      return "lt";
    case FunKind::kLe:
      return "le";
    case FunKind::kGt:
      return "gt";
    case FunKind::kGe:
      return "ge";
    case FunKind::kNodeBefore:
      return "node<<";
    case FunKind::kNodeAfter:
      return "node>>";
    case FunKind::kNodeIs:
      return "is";
    case FunKind::kAnd:
      return "and";
    case FunKind::kOr:
      return "or";
    case FunKind::kNot:
      return "not";
    case FunKind::kAtomize:
      return "atomize";
    case FunKind::kToDouble:
      return "number";
    case FunKind::kToString:
      return "string";
    case FunKind::kContains:
      return "contains";
    case FunKind::kConcat:
      return "concat";
    case FunKind::kStringLength:
      return "string-length";
    case FunKind::kStartsWith:
      return "starts-with";
    case FunKind::kEndsWith:
      return "ends-with";
    case FunKind::kUpperCase:
      return "upper-case";
    case FunKind::kLowerCase:
      return "lower-case";
    case FunKind::kNormalizeSpace:
      return "normalize-space";
    case FunKind::kSubstring2:
    case FunKind::kSubstring3:
      return "substring";
    case FunKind::kAbs:
      return "abs";
    case FunKind::kFloor:
      return "floor";
    case FunKind::kCeiling:
      return "ceiling";
    case FunKind::kRound:
      return "round";
    case FunKind::kNodeName:
      return "name";
  }
  return "?";
}

const char* AggrKindName(AggrKind kind) {
  switch (kind) {
    case AggrKind::kCount:
      return "count";
    case AggrKind::kSum:
      return "sum";
    case AggrKind::kMax:
      return "max";
    case AggrKind::kMin:
      return "min";
    case AggrKind::kAvg:
      return "avg";
    case AggrKind::kEbv:
      return "ebv";
    case AggrKind::kStrJoin:
      return "str-join";
  }
  return "?";
}

bool Op::HasCol(ColId c) const {
  return std::find(schema.begin(), schema.end(), c) != schema.end();
}

namespace {

void HashMix(uint64_t* h, uint64_t v) {
  *h ^= v + 0x9e3779b97f4a7c15ull + (*h << 6) + (*h >> 2);
}

bool SameColSet(const std::vector<ColId>& a, const std::vector<ColId>& b) {
  if (a.size() != b.size()) return false;
  std::vector<ColId> sa = a;
  std::vector<ColId> sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

}  // namespace

uint64_t Dag::HashOp(const Op& op) const {
  uint64_t h = 1469598103934665603ull;
  HashMix(&h, static_cast<uint64_t>(op.kind));
  for (OpId c : op.children) HashMix(&h, c);
  for (const auto& [n, o] : op.proj) {
    HashMix(&h, n);
    HashMix(&h, o);
  }
  HashMix(&h, op.col);
  HashMix(&h, op.col2);
  for (const SortKey& k : op.order) {
    HashMix(&h, k.col);
    HashMix(&h, k.descending ? 1 : 0);
  }
  HashMix(&h, op.part);
  for (ColId c : op.keys) HashMix(&h, c);
  HashMix(&h, op.positional ? 1 : 0);
  HashMix(&h, op.value_join ? 1 : 0);
  HashMix(&h, static_cast<uint64_t>(op.fun));
  for (ColId c : op.args) HashMix(&h, c);
  HashMix(&h, static_cast<uint64_t>(op.aggr));
  HashMix(&h, static_cast<uint64_t>(op.axis));
  HashMix(&h, static_cast<uint64_t>(op.test.kind));
  HashMix(&h, op.test.name);
  HashMix(&h, op.name);
  HashMix(&h, op.constructor_id);
  HashMix(&h, static_cast<uint64_t>(op.min_card));
  HashMix(&h, static_cast<uint64_t>(op.max_card));
  for (ColId c : op.lit.cols) HashMix(&h, c);
  for (const auto& row : op.lit.rows) {
    for (const Value& v : row) HashMix(&h, v.Hash());
  }
  return h;
}

bool Dag::OpEquals(const Op& a, const Op& b) const {
  if (a.min_card != b.min_card || a.max_card != b.max_card) return false;
  return a.kind == b.kind && a.children == b.children && a.proj == b.proj &&
         a.col == b.col && a.col2 == b.col2 && a.order == b.order &&
         a.part == b.part && a.keys == b.keys &&
         a.positional == b.positional && a.value_join == b.value_join &&
         a.fun == b.fun &&
         a.args == b.args && a.aggr == b.aggr && a.axis == b.axis &&
         a.test == b.test && a.name == b.name &&
         a.constructor_id == b.constructor_id && a.lit == b.lit;
}

std::vector<ColId> Dag::ComputeSchema(const Op& op) const {
  auto child_schema = [&](size_t i) -> const std::vector<ColId>& {
    EXRQUY_CHECK(i < op.children.size());
    return ops_[op.children[i]].schema;
  };
  auto require_col = [&](size_t child, ColId c) {
    EXRQUY_CHECK(ops_[op.children[child]].HasCol(c));
  };

  switch (op.kind) {
    case OpKind::kLit:
      return op.lit.cols;
    case OpKind::kProject: {
      std::vector<ColId> out;
      for (const auto& [n, o] : op.proj) {
        require_col(0, o);
        EXRQUY_CHECK(std::find(out.begin(), out.end(), n) == out.end());
        out.push_back(n);
      }
      return out;
    }
    case OpKind::kSelect:
      require_col(0, op.col);
      return child_schema(0);
    case OpKind::kEquiJoin:
    case OpKind::kThetaJoin: {
      require_col(0, op.col);
      require_col(1, op.col2);
      std::vector<ColId> out = child_schema(0);
      for (ColId c : child_schema(1)) {
        EXRQUY_CHECK(std::find(out.begin(), out.end(), c) == out.end());
        out.push_back(c);
      }
      return out;
    }
    case OpKind::kCross: {
      std::vector<ColId> out = child_schema(0);
      for (ColId c : child_schema(1)) {
        EXRQUY_CHECK(std::find(out.begin(), out.end(), c) == out.end());
        out.push_back(c);
      }
      return out;
    }
    case OpKind::kUnion:
      EXRQUY_CHECK(SameColSet(child_schema(0), child_schema(1)));
      return child_schema(0);
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
      for (ColId c : op.keys) {
        require_col(0, c);
        require_col(1, c);
      }
      return child_schema(0);
    case OpKind::kDistinct:
      return child_schema(0);
    case OpKind::kRowNum: {
      for (const SortKey& k : op.order) require_col(0, k.col);
      if (op.part != kNoCol) require_col(0, op.part);
      std::vector<ColId> out = child_schema(0);
      EXRQUY_CHECK(std::find(out.begin(), out.end(), op.col) == out.end());
      out.push_back(op.col);
      return out;
    }
    case OpKind::kRowId: {
      std::vector<ColId> out = child_schema(0);
      EXRQUY_CHECK(std::find(out.begin(), out.end(), op.col) == out.end());
      out.push_back(op.col);
      return out;
    }
    case OpKind::kFun: {
      for (ColId c : op.args) require_col(0, c);
      std::vector<ColId> out = child_schema(0);
      EXRQUY_CHECK(std::find(out.begin(), out.end(), op.col) == out.end());
      out.push_back(op.col);
      return out;
    }
    case OpKind::kAggr: {
      if (op.aggr != AggrKind::kCount) require_col(0, op.col2);
      for (ColId c : op.keys) require_col(0, c);  // intra-group order
      std::vector<ColId> out;
      if (op.part != kNoCol) {
        require_col(0, op.part);
        out.push_back(op.part);
      }
      out.push_back(op.col);
      return out;
    }
    case OpKind::kStep:
      require_col(0, col::iter());
      require_col(0, col::item());
      return {col::iter(), col::item()};
    case OpKind::kDoc:
      return {col::item()};
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode:
      // children: [content, loop]; content has (iter, pos, item), loop
      // has iter.
      require_col(0, col::iter());
      require_col(0, col::pos());
      require_col(0, col::item());
      require_col(1, col::iter());
      return {col::iter(), col::item()};
    case OpKind::kRange:
      require_col(0, col::iter());
      require_col(0, op.col);
      require_col(0, op.col2);
      return {col::iter(), col::item()};
    case OpKind::kCardCheck:
      require_col(0, col::iter());
      require_col(1, col::iter());
      return child_schema(0);
  }
  EXRQUY_CHECK(false);
  return {};
}

OpId Dag::Add(Op op) {
  uint64_t h = HashOp(op);
  auto [lo, hi] = index_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (OpEquals(ops_[it->second], op)) return it->second;
  }
  op.schema = ComputeSchema(op);
  OpId id = static_cast<OpId>(ops_.size());
  ops_.push_back(std::move(op));
  index_.emplace(h, id);
  return id;
}

OpId Dag::AddUnchecked(Op op, std::vector<ColId> schema) {
  op.schema = std::move(schema);
  OpId id = static_cast<OpId>(ops_.size());
  // Deliberately not entered into the hash-cons index: malformed ops must
  // never be returned by the builders.
  ops_.push_back(std::move(op));
  return id;
}

OpId Dag::Lit(LitTable table) {
  Op op;
  op.kind = OpKind::kLit;
#ifndef NDEBUG
  for (const auto& row : table.rows) EXRQUY_CHECK(row.size() == table.cols.size());
#endif
  op.lit = std::move(table);
  return Add(std::move(op));
}

OpId Dag::Empty(std::vector<ColId> cols) {
  LitTable t;
  t.cols = std::move(cols);
  return Lit(std::move(t));
}

OpId Dag::Project(OpId child, std::vector<std::pair<ColId, ColId>> proj) {
  Op op;
  op.kind = OpKind::kProject;
  op.children = {child};
  op.proj = std::move(proj);
  return Add(std::move(op));
}

OpId Dag::Select(OpId child, ColId col) {
  Op op;
  op.kind = OpKind::kSelect;
  op.children = {child};
  op.col = col;
  return Add(std::move(op));
}

OpId Dag::EquiJoin(OpId left, OpId right, ColId left_col, ColId right_col) {
  Op op;
  op.kind = OpKind::kEquiJoin;
  op.children = {left, right};
  op.col = left_col;
  op.col2 = right_col;
  return Add(std::move(op));
}

OpId Dag::ValueJoin(OpId left, OpId right, ColId left_col, ColId right_col) {
  Op op;
  op.kind = OpKind::kEquiJoin;
  op.children = {left, right};
  op.col = left_col;
  op.col2 = right_col;
  op.value_join = true;
  return Add(std::move(op));
}

OpId Dag::ThetaJoin(OpId left, OpId right, ColId left_col, FunKind cmp,
                    ColId right_col) {
  EXRQUY_CHECK(cmp == FunKind::kEq || cmp == FunKind::kNe ||
               cmp == FunKind::kLt || cmp == FunKind::kLe ||
               cmp == FunKind::kGt || cmp == FunKind::kGe);
  Op op;
  op.kind = OpKind::kThetaJoin;
  op.children = {left, right};
  op.col = left_col;
  op.col2 = right_col;
  op.fun = cmp;
  op.value_join = true;
  return Add(std::move(op));
}

OpId Dag::Cross(OpId left, OpId right) {
  Op op;
  op.kind = OpKind::kCross;
  op.children = {left, right};
  return Add(std::move(op));
}

OpId Dag::AttachConst(OpId child, ColId col, Value value) {
  LitTable t;
  t.cols = {col};
  t.rows = {{value}};
  return Cross(child, Lit(std::move(t)));
}

OpId Dag::Union(OpId left, OpId right) {
  Op op;
  op.kind = OpKind::kUnion;
  op.children = {left, right};
  return Add(std::move(op));
}

OpId Dag::Difference(OpId left, OpId right, std::vector<ColId> keys) {
  Op op;
  op.kind = OpKind::kDifference;
  op.children = {left, right};
  op.keys = std::move(keys);
  return Add(std::move(op));
}

OpId Dag::SemiJoin(OpId left, OpId right, std::vector<ColId> keys) {
  Op op;
  op.kind = OpKind::kSemiJoin;
  op.children = {left, right};
  op.keys = std::move(keys);
  return Add(std::move(op));
}

OpId Dag::Distinct(OpId child) {
  Op op;
  op.kind = OpKind::kDistinct;
  op.children = {child};
  return Add(std::move(op));
}

OpId Dag::RowNum(OpId child, ColId result, std::vector<SortKey> order,
                 ColId part) {
  Op op;
  op.kind = OpKind::kRowNum;
  op.children = {child};
  op.col = result;
  op.order = std::move(order);
  op.part = part;
  return Add(std::move(op));
}

OpId Dag::RowId(OpId child, ColId result, bool positional) {
  Op op;
  op.kind = OpKind::kRowId;
  op.children = {child};
  op.col = result;
  op.positional = positional;
  return Add(std::move(op));
}

OpId Dag::Fun(OpId child, FunKind fun, ColId result,
              std::vector<ColId> args) {
  Op op;
  op.kind = OpKind::kFun;
  op.children = {child};
  op.fun = fun;
  op.col = result;
  op.args = std::move(args);
  return Add(std::move(op));
}

OpId Dag::Aggr(OpId child, AggrKind aggr, ColId result, ColId arg,
               ColId part, ColId order_col) {
  Op op;
  op.kind = OpKind::kAggr;
  op.children = {child};
  op.aggr = aggr;
  op.col = result;
  op.col2 = arg;
  op.part = part;
  if (order_col != kNoCol) op.keys = {order_col};
  return Add(std::move(op));
}

OpId Dag::AggrStrJoin(OpId child, ColId result, ColId arg, ColId part,
                      ColId order_col, StrId separator) {
  Op op;
  op.kind = OpKind::kAggr;
  op.children = {child};
  op.aggr = AggrKind::kStrJoin;
  op.col = result;
  op.col2 = arg;
  op.part = part;
  if (order_col != kNoCol) op.keys = {order_col};
  op.name = separator;
  return Add(std::move(op));
}

OpId Dag::Range(OpId child, ColId lo, ColId hi) {
  Op op;
  op.kind = OpKind::kRange;
  op.children = {child};
  op.col = lo;
  op.col2 = hi;
  return Add(std::move(op));
}

OpId Dag::CardCheck(OpId child, OpId loop, int64_t min_card,
                    int64_t max_card, StrId fn_name) {
  Op op;
  op.kind = OpKind::kCardCheck;
  op.children = {child, loop};
  op.min_card = min_card;
  op.max_card = max_card;
  op.name = fn_name;
  return Add(std::move(op));
}

OpId Dag::Step(OpId child, Axis axis, NodeTest test) {
  Op op;
  op.kind = OpKind::kStep;
  op.children = {child};
  op.axis = axis;
  op.test = test;
  return Add(std::move(op));
}

OpId Dag::Doc(StrId name) {
  Op op;
  op.kind = OpKind::kDoc;
  op.name = name;
  return Add(std::move(op));
}

OpId Dag::Elem(StrId name, OpId content, OpId loop) {
  Op op;
  op.kind = OpKind::kElem;
  op.children = {content, loop};
  op.name = name;
  op.constructor_id = next_constructor_id_++;
  return Add(std::move(op));
}

OpId Dag::Attr(StrId name, OpId value, OpId loop) {
  Op op;
  op.kind = OpKind::kAttr;
  op.children = {value, loop};
  op.name = name;
  op.constructor_id = next_constructor_id_++;
  return Add(std::move(op));
}

OpId Dag::Text(OpId content, OpId loop) {
  Op op;
  op.kind = OpKind::kTextNode;
  op.children = {content, loop};
  op.constructor_id = next_constructor_id_++;
  return Add(std::move(op));
}

void Dag::SetProv(OpId id, std::string prov) {
  if (ops_[id].prov.empty()) ops_[id].prov = std::move(prov);
}

std::vector<OpId> Dag::ReachableFrom(OpId root) const {
  std::vector<bool> seen(ops_.size(), false);
  std::vector<OpId> stack = {root};
  seen[root] = true;
  while (!stack.empty()) {
    OpId id = stack.back();
    stack.pop_back();
    for (OpId c : ops_[id].children) {
      if (!seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  std::vector<OpId> out;
  for (OpId id = 0; id < ops_.size(); ++id) {
    if (seen[id]) out.push_back(id);  // ids are topologically ordered
  }
  return out;
}

}  // namespace exrquy
