// Resource governor: deadlines, cancellation tokens, memory budgets and
// the deterministic fault-injection harness (common/governor.h,
// engine/faults.h). The contract under test, from DESIGN.md:
//
//   * an aborted query surfaces exactly one of kCancelled /
//     kDeadlineExceeded / kResourceExhausted — never a torn result, a
//     hang, or a leak (the ASan job covers leaks; these tests completing
//     at all covers hangs);
//   * the abort leaves the Session fully usable: the node store and
//     string pool are rolled back to their pre-query sizes, and
//     re-running the same query without the fault yields results
//     byte-identical to a never-faulted reference;
//   * fault injection is deterministic in outcome: for a fixed
//     (query, ordering, chunk_rows, fault plan), whether the query fails
//     and with which Status code is identical at 1 and 4 threads.
//
// The sweep drives all twenty XMark queries through every combination of
// {1, 4} threads x {ordered, unordered} x {cancel-at-op, deadline-at-
// chunk, fail-alloc} — the acceptance gate of the resource-governance
// issue.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/governor.h"
#include "common/status.h"
#include "engine/faults.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

// chunk_rows is pinned tiny and identical at every thread count: chunk-
// boundary poll counts are a pure function of table sizes, so the
// deadline-at-chunk fault reaches its threshold (or doesn't) identically
// whether the chunks run on one thread or four.
QueryOptions Threads(int n) {
  QueryOptions o;
  o.num_threads = n;
  o.chunk_rows = 7;
  return o;
}

class GovernorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.004;
    ASSERT_TRUE(
        session_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
    nodes_ = session_->store().node_count();
    fragments_ = session_->store().fragment_count();
    strings_ = session_->strings().size();
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  // Every test may call this after every Execute: no exit path — success,
  // compile error, runtime error, governor abort — may grow the store or
  // the pool.
  static void ExpectSessionPristine(const std::string& context) {
    EXPECT_EQ(session_->store().node_count(), nodes_) << context;
    EXPECT_EQ(session_->store().fragment_count(), fragments_) << context;
    EXPECT_EQ(session_->strings().size(), strings_) << context;
  }

  static Session* session_;
  static size_t nodes_;
  static size_t fragments_;
  static size_t strings_;
};

Session* GovernorTest::session_ = nullptr;
size_t GovernorTest::nodes_ = 0;
size_t GovernorTest::fragments_ = 0;
size_t GovernorTest::strings_ = 0;

// A query whose evaluation is long enough (a three-way cross product
// over //person, ~10^6 rows at scale 0.004) that a 1 ms deadline or an
// early Cancel() always lands mid-flight, never after completion.
const char kSlowQuery[] =
    R"(count(for $a in doc("auction.xml")//person,
                $b in doc("auction.xml")//person,
                $c in doc("auction.xml")//person
            return 1))";

// ---------------------------------------------------------------------
// Cancellation tokens.

TEST_F(GovernorTest, PreCancelledTokenFailsBeforeAnyWork) {
  QueryOptions o = Threads(1);
  o.cancel = std::make_shared<CancelToken>();
  o.cancel->Cancel();
  Result<QueryResult> r = session_->Execute(XMarkQueryText("Q1"), o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  ExpectSessionPristine("pre-cancelled");
  // The Session is not poisoned: the same query runs fine afterwards.
  EXPECT_TRUE(session_->Execute(XMarkQueryText("Q1"), Threads(1)).ok());
}

TEST_F(GovernorTest, CancelFromAnotherThreadAbortsMidQuery) {
  for (int threads : {1, 4}) {
    QueryOptions o = Threads(threads);
    o.cancel = std::make_shared<CancelToken>();
    std::thread canceller([token = o.cancel] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      token->Cancel();
    });
    Result<QueryResult> r = session_->Execute(kSlowQuery, o);
    canceller.join();
    ASSERT_FALSE(r.ok()) << "threads=" << threads;
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
        << "threads=" << threads << ": " << r.status().ToString();
    ExpectSessionPristine("async cancel");
  }
}

// ---------------------------------------------------------------------
// Wall-clock deadlines.

TEST_F(GovernorTest, DeadlineAbortsSlowQuery) {
  for (int threads : {1, 4}) {
    QueryOptions o = Threads(threads);
    o.deadline_ms = 1;
    Result<QueryResult> r = session_->Execute(kSlowQuery, o);
    ASSERT_FALSE(r.ok()) << "threads=" << threads;
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << "threads=" << threads << ": " << r.status().ToString();
    ExpectSessionPristine("deadline");
  }
}

TEST_F(GovernorTest, GenerousDeadlineDoesNotFireOnCompletion) {
  // A query that finishes well inside its deadline must not be failed by
  // an end-of-run recheck.
  QueryOptions o = Threads(4);
  o.deadline_ms = 600000;
  Result<QueryResult> r = session_->Execute(XMarkQueryText("Q1"), o);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

// ---------------------------------------------------------------------
// Memory budgets.

TEST_F(GovernorTest, TinyBudgetExhaustsCleanly) {
  for (int threads : {1, 4}) {
    QueryOptions o = Threads(threads);
    o.memory_budget = 1024;  // less than one intermediate column
    Result<QueryResult> r = session_->Execute(XMarkQueryText("Q10"), o);
    ASSERT_FALSE(r.ok()) << "threads=" << threads;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << "threads=" << threads << ": " << r.status().ToString();
    ExpectSessionPristine("tiny budget");
  }
}

TEST_F(GovernorTest, GenerousBudgetSucceedsAndProfilesUsage) {
  QueryOptions o = Threads(1);
  o.memory_budget = size_t{1} << 30;
  o.profile = true;
  Result<QueryResult> r = session_->Execute(XMarkQueryText("Q10"), o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->profile.budget_limit_bytes(), size_t{1} << 30);
  EXPECT_GT(r->profile.budget_peak_bytes(), 0u);
  std::string json = r->profile.ToJson();
  EXPECT_NE(json.find("\"budget_peak_bytes\""), std::string::npos);
}

TEST_F(GovernorTest, ProfileAccountsEvenWithoutLimit) {
  // profile = true arms accounting with limit 0: numbers are reported,
  // nothing is ever exhausted.
  QueryOptions o = Threads(1);
  o.profile = true;
  Result<QueryResult> r = session_->Execute(XMarkQueryText("Q1"), o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->profile.budget_limit_bytes(), 0u);
  EXPECT_GT(r->profile.budget_peak_bytes(), 0u);
}

// ---------------------------------------------------------------------
// Environment plumbing: EXRQUY_MEM_BUDGET and EXRQUY_FAULT_* configure
// the same machinery when QueryOptions leaves them unset.

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

TEST_F(GovernorTest, EnvMemBudgetApplies) {
  ScopedEnv env("EXRQUY_MEM_BUDGET", "1024");
  Result<QueryResult> r = session_->Execute(XMarkQueryText("Q10"), Threads(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  ExpectSessionPristine("env budget");
}

TEST_F(GovernorTest, EnvFaultCancelApplies) {
  ScopedEnv env("EXRQUY_FAULT_CANCEL_OP", "1");
  Result<QueryResult> r = session_->Execute(XMarkQueryText("Q1"), Threads(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  ExpectSessionPristine("env fault");
}

TEST_F(GovernorTest, OptionsBeatEnvironment) {
  // An explicit (generous) option wins over a hostile environment.
  ScopedEnv env("EXRQUY_MEM_BUDGET", "1024");
  QueryOptions o = Threads(1);
  o.memory_budget = size_t{1} << 30;
  EXPECT_TRUE(session_->Execute(XMarkQueryText("Q10"), o).ok());
}

// ---------------------------------------------------------------------
// Satellite (b): a loop of failing queries — compile errors, runtime
// errors, governor aborts — leaves the store and the pool exactly where
// they started.

TEST_F(GovernorTest, FailingQueryLoopNeverGrowsSessionState) {
  QueryOptions cancelled = Threads(1);
  cancelled.cancel = std::make_shared<CancelToken>();
  cancelled.cancel->Cancel();
  QueryOptions starved = Threads(4);
  starved.memory_budget = 512;
  struct Case {
    const char* query;
    QueryOptions options;
  };
  const std::vector<Case> cases = {
      {"for $x in", Threads(1)},                           // parse error
      {R"(doc("nope.xml")//item)", Threads(1)},            // unknown doc
      {R"(1 + doc("auction.xml")//person)", Threads(4)},   // runtime error
      {XMarkQueryText("Q1").c_str(), cancelled},           // governor abort
      {XMarkQueryText("Q10").c_str(), starved},            // budget abort
  };
  for (int i = 0; i < 10; ++i) {
    for (const Case& c : cases) {
      EXPECT_FALSE(session_->Execute(c.query, c.options).ok()) << c.query;
      ExpectSessionPristine(c.query);
    }
  }
  // Still healthy after fifty consecutive failures.
  EXPECT_TRUE(session_->Execute(XMarkQueryText("Q1"), Threads(4)).ok());
}

// ---------------------------------------------------------------------
// The fault-injection sweep: all twenty XMark queries, each fault kind,
// ordered and unordered plans, 1 and 4 threads.

struct Fault {
  const char* name;
  FaultPlan plan;
  StatusCode expected;
};

std::vector<Fault> FaultMatrix() {
  std::vector<Fault> faults;
  {
    FaultPlan p;
    p.cancel_at_op = 2;
    faults.push_back({"cancel@op2", p, StatusCode::kCancelled});
  }
  {
    FaultPlan p;
    p.deadline_at_chunk = 2;
    faults.push_back({"deadline@chunk2", p, StatusCode::kDeadlineExceeded});
  }
  {
    FaultPlan p;
    p.fail_alloc = 5;
    faults.push_back({"alloc@5", p, StatusCode::kResourceExhausted});
  }
  {
    // Thresholds far beyond any counter this workload reaches: the armed
    // harness must be invisible and the query must succeed.
    FaultPlan p;
    p.cancel_at_op = 1000000000;
    faults.push_back({"cancel@1e9", p, StatusCode::kOk});
  }
  return faults;
}

TEST_F(GovernorTest, FaultSweepAllXMarkQueries) {
  for (OrderingMode mode : {OrderingMode::kOrdered, OrderingMode::kUnordered}) {
    for (const XMarkQuery& q : XMarkQueries()) {
      // Never-faulted reference for the byte-identical re-run check.
      QueryOptions ref_opts = Threads(1);
      ref_opts.default_ordering = mode;
      Result<QueryResult> reference = session_->Execute(q.text, ref_opts);
      ASSERT_TRUE(reference.ok())
          << q.name << ": " << reference.status().ToString();

      for (const Fault& fault : FaultMatrix()) {
        std::string context = std::string(q.name) + " " + fault.name +
                              (mode == OrderingMode::kUnordered
                                   ? " unordered"
                                   : " ordered");
        StatusCode outcome_at_one = StatusCode::kOk;
        for (int threads : {1, 4}) {
          QueryOptions o = Threads(threads);
          o.default_ordering = mode;
          o.faults = fault.plan;
          Result<QueryResult> r = session_->Execute(q.text, o);
          // The query either succeeds (fault point unreached) or fails
          // with exactly the planned code — never some other error, and
          // the test completing at all proves no hang.
          StatusCode outcome = r.ok() ? StatusCode::kOk : r.status().code();
          if (!r.ok()) {
            EXPECT_EQ(outcome, fault.expected)
                << context << " threads=" << threads << ": "
                << r.status().ToString();
          }
          if (fault.expected == StatusCode::kOk) {
            EXPECT_TRUE(r.ok()) << context << " threads=" << threads << ": "
                                << r.status().ToString();
          }
          // Outcome is deterministic across thread counts.
          if (threads == 1) {
            outcome_at_one = outcome;
          } else {
            EXPECT_EQ(outcome, outcome_at_one) << context;
          }
          ExpectSessionPristine(context);

          // After any abort the Session re-runs the same query,
          // unfaulted, to a byte-identical result.
          QueryOptions rerun = Threads(threads);
          rerun.default_ordering = mode;
          Result<QueryResult> again = session_->Execute(q.text, rerun);
          ASSERT_TRUE(again.ok())
              << context << ": " << again.status().ToString();
          EXPECT_EQ(again->serialized, reference->serialized) << context;
          EXPECT_EQ(again->items, reference->items) << context;
        }
      }
    }
  }
}

TEST_F(GovernorTest, FaultedRunsReportPlannedCodeOnQ8Join) {
  // Q8 (the join-heavy query) with every fault at threshold 1: the very
  // first counter tick trips, so the failure is unconditional.
  struct Case {
    FaultPlan plan;
    StatusCode expected;
  };
  std::vector<Case> cases;
  {
    FaultPlan p;
    p.cancel_at_op = 1;
    cases.push_back({p, StatusCode::kCancelled});
  }
  {
    FaultPlan p;
    p.deadline_at_chunk = 1;
    cases.push_back({p, StatusCode::kDeadlineExceeded});
  }
  {
    FaultPlan p;
    p.fail_alloc = 1;
    cases.push_back({p, StatusCode::kResourceExhausted});
  }
  for (const Case& c : cases) {
    for (int threads : {1, 4}) {
      QueryOptions o = Threads(threads);
      o.faults = c.plan;
      Result<QueryResult> r = session_->Execute(XMarkQueryText("Q8"), o);
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), c.expected) << r.status().ToString();
      ExpectSessionPristine("Q8 fault");
    }
  }
}

}  // namespace
}  // namespace exrquy
