// The plan verifier (opt/verify.h): every class of malformed plan must
// be rejected with a diagnostic naming the violated invariant and the
// offending operator id, and every plan the compiler and optimizer
// actually produce — all 20 XMark queries, before and after each
// optimizer pass — must verify clean.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "api/session.h"
#include "opt/pipeline.h"
#include "opt/verify.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

using col::item;
using col::iter;
using col::pos;

class VerifyTest : public ::testing::Test {
 protected:
  // (iter, pos, item) literal rows.
  OpId Triples(std::vector<std::array<int64_t, 3>> rows) {
    LitTable t;
    t.cols = {iter(), pos(), item()};
    for (const auto& r : rows) {
      t.rows.push_back(
          {Value::Int(r[0]), Value::Int(r[1]), Value::Int(r[2])});
    }
    return dag_.Lit(std::move(t));
  }

  // Asserts that verification fails citing `invariant` and the given op.
  void ExpectRejected(OpId root, const std::string& invariant, OpId bad) {
    Status st = VerifyPlan(dag_, root);
    ASSERT_FALSE(st.ok()) << "expected a [" << invariant << "] rejection";
    EXPECT_NE(st.message().find("[" + invariant + "]"), std::string::npos)
        << st.message();
    EXPECT_NE(st.message().find("op " + std::to_string(bad)),
              std::string::npos)
        << st.message();
  }

  Dag dag_;
};

TEST_F(VerifyTest, AcceptsWellFormedPlans) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}, {2, 1, 9}});
  ColId rank = ColSym("vrank");
  OpId rn = dag_.RowNum(l, rank, {{pos(), false}}, iter());
  OpId proj =
      dag_.Project(rn, {{iter(), iter()}, {pos(), rank}, {item(), item()}});
  EXPECT_TRUE(VerifyPlan(dag_, proj).ok());
}

TEST_F(VerifyTest, RejectsDanglingColumnReference) {
  OpId l = Triples({{1, 1, 5}});
  Op op;
  op.kind = OpKind::kSelect;
  op.children = {l};
  op.col = ColSym("vnot_there");
  OpId bad = dag_.AddUnchecked(std::move(op), {iter(), pos(), item()});
  ExpectRejected(bad, "dangling-column", bad);
}

TEST_F(VerifyTest, RejectsDuplicateOutputColumn) {
  OpId l = Triples({{1, 1, 5}});
  ColId x = ColSym("vx");
  Op op;
  op.kind = OpKind::kProject;
  op.children = {l};
  op.proj = {{x, iter()}, {x, item()}};
  OpId bad = dag_.AddUnchecked(std::move(op), {x, x});
  ExpectRejected(bad, "duplicate-column", bad);
}

TEST_F(VerifyTest, RejectsWrongFunArity) {
  OpId l = Triples({{1, 1, 5}});
  ColId res = ColSym("vsum");
  Op op;
  op.kind = OpKind::kFun;
  op.children = {l};
  op.fun = FunKind::kAdd;
  op.col = res;
  op.args = {item()};  // add is binary
  OpId bad = dag_.AddUnchecked(std::move(op), {iter(), pos(), item(), res});
  ExpectRejected(bad, "fun-arity", bad);
}

TEST_F(VerifyTest, RejectsCyclicEdge) {
  OpId l = Triples({{1, 1, 5}});
  Op op;
  op.kind = OpKind::kDistinct;
  op.children = {static_cast<OpId>(dag_.size())};  // points at itself
  (void)l;
  OpId bad = dag_.AddUnchecked(std::move(op), {iter(), pos(), item()});
  ExpectRejected(bad, "acyclicity", bad);
}

TEST_F(VerifyTest, RejectsNoOpChild) {
  Op op;
  op.kind = OpKind::kDistinct;
  op.children = {kNoOp};
  OpId bad = dag_.AddUnchecked(std::move(op), {item()});
  ExpectRejected(bad, "op-out-of-range", bad);
}

TEST_F(VerifyTest, RejectsWrongChildArity) {
  OpId l = Triples({{1, 1, 5}});
  Op op;
  op.kind = OpKind::kUnion;
  op.children = {l};  // needs two inputs
  OpId bad = dag_.AddUnchecked(std::move(op), {iter(), pos(), item()});
  ExpectRejected(bad, "child-arity", bad);
}

TEST_F(VerifyTest, RejectsForgedSchema) {
  OpId l = Triples({{1, 1, 5}});
  Op op;
  op.kind = OpKind::kDistinct;
  op.children = {l};
  // Claims a column the input cannot deliver.
  OpId bad = dag_.AddUnchecked(std::move(op),
                               {iter(), pos(), item(), ColSym("vghost")});
  ExpectRejected(bad, "schema-mismatch", bad);
}

TEST_F(VerifyTest, RejectsMisalignedUnion) {
  OpId l = Triples({{1, 1, 5}});
  OpId r = dag_.Empty({iter(), pos()});
  Op op;
  op.kind = OpKind::kUnion;
  op.children = {l, r};
  OpId bad = dag_.AddUnchecked(std::move(op), {iter(), pos(), item()});
  ExpectRejected(bad, "union-schema", bad);
}

TEST_F(VerifyTest, RejectsSharedConstructorIds) {
  OpId content = Triples({{1, 1, 5}});
  LitTable loop_t;
  loop_t.cols = {iter()};
  loop_t.rows = {{Value::Int(1)}};
  OpId loop = dag_.Lit(std::move(loop_t));
  OpId e1 = dag_.Elem(StrPool::kEmpty, content, loop);
  // A second constructor stamped with the first one's id: hash-consing
  // would have been allowed to merge them, destroying node identity.
  Op op = dag_.op(e1);
  Op forged;
  forged.kind = OpKind::kTextNode;
  forged.children = {content, loop};
  forged.constructor_id = op.constructor_id;
  OpId e2 = dag_.AddUnchecked(std::move(forged), {iter(), item()});
  OpId u = dag_.AddUnchecked(
      [&] {
        Op un;
        un.kind = OpKind::kUnion;
        un.children = {e1, e2};
        return un;
      }(),
      {iter(), item()});
  ExpectRejected(u, "constructor-sharing", e2);
}

TEST_F(VerifyTest, RejectsInvalidCardinalityBounds) {
  OpId l = Triples({{1, 1, 5}});
  LitTable loop_t;
  loop_t.cols = {iter()};
  loop_t.rows = {{Value::Int(1)}};
  OpId loop = dag_.Lit(std::move(loop_t));
  Op op;
  op.kind = OpKind::kCardCheck;
  op.children = {l, loop};
  op.min_card = 2;
  op.max_card = 1;  // empty interval
  OpId bad = dag_.AddUnchecked(std::move(op), {iter(), pos(), item()});
  ExpectRejected(bad, "card-bounds", bad);
}

TEST_F(VerifyTest, RejectsFalseKeyClaim) {
  // item repeats across rows, so it cannot be a key.
  OpId l = Triples({{1, 1, 5}, {2, 1, 5}});
  auto facts = DeriveFacts(dag_, l);
  OpFacts claim;
  claim.keys.insert(item());
  Status st = CheckClaims(dag_, l, claim, facts.at(l));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("[property-claim]"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("key claim"), std::string::npos)
      << st.message();
  // iter genuinely is a key here, so that claim passes.
  OpFacts good;
  good.keys.insert(iter());
  EXPECT_TRUE(CheckClaims(dag_, l, good, facts.at(l)).ok());
}

TEST_F(VerifyTest, RejectsFalseConstantClaim) {
  OpId l = Triples({{1, 1, 5}, {2, 1, 7}});
  auto facts = DeriveFacts(dag_, l);
  OpFacts claim;
  claim.constant.insert(item());  // 5 vs 7
  Status st = CheckClaims(dag_, l, claim, facts.at(l));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("constant claim"), std::string::npos)
      << st.message();
  OpFacts good;
  good.constant.insert(pos());  // 1 in every row
  EXPECT_TRUE(CheckClaims(dag_, l, good, facts.at(l)).ok());
}

TEST_F(VerifyTest, DerivedFactsTrackRowIdAndAggregates) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}, {2, 1, 9}});
  ColId rid = ColSym("vrid");
  OpId numbered = dag_.RowId(l, rid);
  ColId cnt = ColSym("vcnt");
  OpId counts = dag_.Aggr(numbered, AggrKind::kCount, cnt, kNoCol, iter());
  auto facts = DeriveFacts(dag_, counts);
  // # produces a fresh key in arbitrary order.
  EXPECT_TRUE(facts.at(numbered).keys.count(rid) != 0);
  EXPECT_TRUE(facts.at(numbered).arbitrary.count(rid) != 0);
  // Grouped aggregation keys its partition column.
  EXPECT_TRUE(facts.at(counts).keys.count(iter()) != 0);
  // A global aggregate has exactly one row.
  ColId total = ColSym("vtotal");
  OpId global = dag_.Aggr(l, AggrKind::kCount, total, kNoCol, kNoCol);
  auto global_facts = DeriveFacts(dag_, global);
  EXPECT_TRUE(global_facts.at(global).at_most_one_row);
  EXPECT_TRUE(global_facts.at(global).constant.count(total) != 0);
  // The interval bounds underlying those booleans: a literal is [n, n],
  // # and grouped aggregation preserve/bound it, a global aggregate is
  // exactly one row.
  EXPECT_EQ(facts.at(l).min_rows, 3u);
  EXPECT_EQ(facts.at(l).max_rows, 3u);
  EXPECT_EQ(facts.at(numbered).min_rows, 3u);
  EXPECT_EQ(facts.at(numbered).max_rows, 3u);
  EXPECT_EQ(facts.at(counts).min_rows, 1u);
  EXPECT_EQ(facts.at(counts).max_rows, 3u);
  EXPECT_EQ(global_facts.at(global).min_rows, 1u);
  EXPECT_EQ(global_facts.at(global).max_rows, 1u);
}

TEST_F(VerifyTest, CheckCardClaimRequiresContainment) {
  OpId l = Triples({{1, 1, 5}, {1, 2, 7}, {2, 1, 9}});
  auto facts = DeriveFacts(dag_, l);  // derived interval is [3, 3]
  CardRange sound;
  sound.min = 0;
  sound.max = 10;
  EXPECT_TRUE(CheckCardClaim(dag_, l, sound, facts.at(l)).ok());
  CardRange lying;  // claims at most 2 rows — excludes the derived [3,3]
  lying.min = 0;
  lying.max = 2;
  Status st = CheckCardClaim(dag_, l, lying, facts.at(l));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("[cardinality-claim]"), std::string::npos)
      << st.message();
  CardRange lying_min;  // claims at least 4 rows
  lying_min.min = 4;
  lying_min.max = kUnboundedRows;
  EXPECT_FALSE(CheckCardClaim(dag_, l, lying_min, facts.at(l)).ok());
}

TEST_F(VerifyTest, PipelineRejectsMalformedInputWithDotDump) {
  OpId l = Triples({{1, 1, 5}});
  Op op;
  op.kind = OpKind::kSelect;
  op.children = {l};
  op.col = ColSym("vbroken");
  OpId bad = dag_.AddUnchecked(std::move(op), {iter(), pos(), item()});

  StrPool strings;
  OptimizeOptions options;
  options.verify_each_pass = true;
  options.strings = &strings;
  Result<OpId> opt = Optimize(&dag_, bad, options);
  ASSERT_FALSE(opt.ok());
  const std::string& msg = opt.status().message();
  EXPECT_NE(msg.find("initial plan (compiler output)"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("[dangling-column]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("digraph plan"), std::string::npos) << msg;
}

// Every XMark query must verify clean as compiled, as optimized, and
// after every individual optimizer pass (verify_each_pass replays a
// failing pass rewrite-by-rewrite, so a clean run here certifies each
// intermediate plan).
TEST(VerifyXMarkTest, AllQueriesVerifyBeforeAndAfterEveryPass) {
  Session session;
  for (bool unordered : {false, true}) {
    for (const XMarkQuery& q : XMarkQueries()) {
      QueryOptions options;
      options.verify_each_pass = true;
      options.default_ordering =
          unordered ? OrderingMode::kUnordered : OrderingMode::kOrdered;
      Result<QueryPlans> plans = session.Plan(q.text, options);
      ASSERT_TRUE(plans.ok())
          << q.name << (unordered ? " (unordered)" : " (ordered)") << ": "
          << plans.status().ToString();
      EXPECT_TRUE(VerifyPlan(*plans->dag, plans->initial).ok()) << q.name;
      EXPECT_TRUE(VerifyPlan(*plans->dag, plans->optimized).ok()) << q.name;
    }
  }
}

TEST(VerifyXMarkTest, BaselineConfigurationAlsoVerifies) {
  Session session;
  QueryOptions baseline;
  baseline.enable_order_indifference = false;
  for (const XMarkQuery& q : XMarkQueries()) {
    Result<QueryPlans> plans = session.Plan(q.text, baseline);
    ASSERT_TRUE(plans.ok()) << q.name << ": " << plans.status().ToString();
    EXPECT_TRUE(VerifyPlan(*plans->dag, plans->optimized).ok()) << q.name;
  }
}

}  // namespace
}  // namespace exrquy
