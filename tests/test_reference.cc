// Differential testing: the independent tree-walking reference
// interpreter (src/ref/) against the full algebraic pipeline (compiler +
// rewriter + columnar engine) in the baseline ordered-mode configuration.
// Exact result-sequence equality is required; any divergence localizes a
// bug in one of the two stacks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/session.h"
#include "ref/interp.h"
#include "xquery/normalize.h"
#include "xquery/parser.h"

namespace exrquy {
namespace {

constexpr char kDoc[] = R"(
<shop>
  <dept id="d1" floor="2">
    <item price="12"><name>lamp</name><tag>home</tag></item>
    <item price="7"><name>mug</name></item>
  </dept>
  <dept id="d2" floor="1">
    <item price="30"><name>chair</name><tag>home</tag><tag>wood</tag></item>
  </dept>
  <dept id="d3" floor="2"/>
</shop>)";

class ReferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(session_.LoadDocument("s.xml", kDoc).ok());
    ASSERT_TRUE(
        session_.LoadDocument("t.xml", "<a><b><c/><d/></b><c/></a>").ok());
  }

  // Runs via the reference interpreter (normalized, ordered semantics).
  Result<std::vector<std::string>> RunRef(const std::string& query) {
    EXRQUY_ASSIGN_OR_RETURN(Query parsed, ParseQuery(query));
    NormalizeOptions norm;
    norm.insert_unordered = false;
    EXRQUY_RETURN_IF_ERROR(Normalize(&parsed, norm));
    std::map<StrId, NodeIdx> docs;
    docs[session_.strings().Intern("s.xml")] =
        session_.store().fragment(0).root;
    docs[session_.strings().Intern("t.xml")] =
        session_.store().fragment(1).root;
    RefInterpreter interp(&session_.store(), &session_.strings(), docs);
    EXRQUY_ASSIGN_OR_RETURN(std::vector<Value> items, interp.Eval(*parsed.body));
    return interp.Render(items);
  }

  void ExpectAgree(const std::string& query) {
    QueryOptions baseline;
    baseline.enable_order_indifference = false;
    Result<QueryResult> compiled = session_.Execute(query, baseline);
    Result<std::vector<std::string>> ref = RunRef(query);
    ASSERT_EQ(compiled.ok(), ref.ok())
        << query << "\ncompiled: " << compiled.status().ToString()
        << "\nref:      " << ref.status().ToString();
    if (!compiled.ok()) return;
    EXPECT_EQ(compiled->items, *ref) << query;

    // The fully enabled configuration in ordered mode must agree too.
    QueryOptions exploit;
    Result<QueryResult> optimized = session_.Execute(query, exploit);
    ASSERT_TRUE(optimized.ok()) << query;
    if (query.find("distinct-values") == std::string::npos) {
      EXPECT_EQ(optimized->items, *ref) << query << " (optimized)";
    }
  }

  Session session_;
};

TEST_F(ReferenceTest, PathsAndPredicates) {
  ExpectAgree(R"(doc("s.xml")/shop/dept/item/name)");
  ExpectAgree(R"(doc("s.xml")//item[@price > 10]/name/text())");
  ExpectAgree(R"(doc("s.xml")//item[1])");
  ExpectAgree(R"(doc("s.xml")//item[last()])");
  ExpectAgree(R"(doc("s.xml")//item[position() >= 2]/name)");
  ExpectAgree(R"(doc("s.xml")//item[tag = "wood"])");
  ExpectAgree(R"(doc("s.xml")//dept[not(item)]/@id)");
  ExpectAgree(R"(doc("s.xml")//tag/..)");
  ExpectAgree(R"(doc("t.xml")//(c|d))");
  ExpectAgree(R"(doc("s.xml")//item/ancestor::dept/@id)");
  ExpectAgree(R"(doc("s.xml")//dept[2]/preceding-sibling::dept)");
  ExpectAgree(R"(doc("s.xml")//name/following::tag)");
}

TEST_F(ReferenceTest, FlworShapes) {
  ExpectAgree(R"(for $d in doc("s.xml")/shop/dept
                 return count($d/item))");
  ExpectAgree(R"(for $d in doc("s.xml")/shop/dept
                 let $n := count($d//tag)
                 where $n > 0
                 return <dept tags="{ $n }">{ $d/@id }</dept>)");
  ExpectAgree(R"(for $d in doc("s.xml")/shop/dept
                 for $i in $d/item
                 return concat($d/@id, ":", $i/name))");
  ExpectAgree(R"(for $i at $p in doc("s.xml")//item
                 return <x p="{ $p }">{ $i/name/text() }</x>)");
  ExpectAgree(R"(for $i in doc("s.xml")//item
                 order by number($i/@price) descending
                 return $i/name/text())");
  ExpectAgree(R"(for $d in doc("s.xml")/shop/dept
                 order by $d/@floor, $d/@id descending
                 return $d/@id)");
}

TEST_F(ReferenceTest, ComparisonsAndLogic) {
  ExpectAgree(R"(doc("s.xml")//item/@price > 20)");
  ExpectAgree(R"(doc("s.xml")//item/@price = 7)");
  ExpectAgree("(1, 2, 3) != (3, 4)");
  ExpectAgree("() = (1)");
  ExpectAgree(R"(doc("s.xml")//item[1] << doc("s.xml")//item[2])");
  ExpectAgree(R"(doc("s.xml")//dept[1] is doc("s.xml")//dept[@id = "d1"])");
  ExpectAgree(R"(exists(doc("s.xml")//tag) and count(doc("s.xml")//tag) > 2)");
  ExpectAgree(R"(some $i in doc("s.xml")//item satisfies $i/@price < 10)");
  ExpectAgree(R"(every $i in doc("s.xml")//item satisfies $i/name)");
}

TEST_F(ReferenceTest, ArithmeticAndAggregates) {
  ExpectAgree(R"(sum(doc("s.xml")//item/@price))");
  ExpectAgree(R"(avg(doc("s.xml")//item/@price))");
  ExpectAgree(R"(max(doc("s.xml")//item/@price))");
  ExpectAgree(R"(min(doc("s.xml")//item/@price) + 0.5)");
  ExpectAgree(R"(count(doc("s.xml")//item) * 10 - 5)");
  ExpectAgree("7 idiv 2");
  ExpectAgree("7 mod 2");
  ExpectAgree("-(3.5) * 2");
  ExpectAgree("() + 1");
  ExpectAgree("sum(())");
  ExpectAgree("sum(1 to 100)");
}

TEST_F(ReferenceTest, StringsAndBuiltins) {
  ExpectAgree(R"(string-join(doc("s.xml")//name/text(), ", "))");
  ExpectAgree(R"(contains(string(doc("s.xml")//name[1]), "am"))");
  ExpectAgree(R"(upper-case(concat("a", "b", "c")))");
  ExpectAgree(R"(substring("abcdef", 2, 3))");
  ExpectAgree(R"(normalize-space("  x   y "))");
  ExpectAgree(R"(string-length(string(doc("s.xml")//name[2])))");
  ExpectAgree(R"(for $n in doc("s.xml")//dept return name($n))");
  ExpectAgree("reverse((1, 2, 3))");
  ExpectAgree("subsequence((1,2,3,4,5), 2, 3)");
  ExpectAgree(R"(distinct-values(doc("s.xml")//tag))");
  ExpectAgree("floor(2.7) + ceiling(0.1) + round(0.5) + abs(-2)");
}

TEST_F(ReferenceTest, Constructors) {
  ExpectAgree(R"(<r n="{ count(doc("s.xml")//item) }">{
                   doc("s.xml")//item[1]/name }</r>)");
  ExpectAgree(R"(<r>{ 1, "x", 2 }</r>)");
  ExpectAgree(R"(<r>a{ 1 }b</r>)");
  ExpectAgree(R"(<r>{ doc("s.xml")//item[2]/@price }</r>)");
  ExpectAgree("text { \"t\" }");
  ExpectAgree(R"(let $c := <wrap>{ doc("t.xml")/a/b }</wrap>
                 return ($c/b/c, count($c//d)))");
}

TEST_F(ReferenceTest, ConditionalsAndCardinality) {
  ExpectAgree(R"(for $i in doc("s.xml")//item
                 return if ($i/@price > 10) then "x" else "y")");
  ExpectAgree("if (()) then 1 else 2");
  ExpectAgree("zero-or-one(())");
  ExpectAgree("exactly-one(doc(\"s.xml\")/shop)/dept[1]/@id");
  ExpectAgree("exactly-one(())");         // both must fail
  ExpectAgree("one-or-more(())");         // both must fail
  ExpectAgree("1 idiv 0");                // both must fail
  ExpectAgree("\"a\" + 1");               // both must fail
  ExpectAgree("if ((1,2)) then 1 else 2");  // both must fail
}

TEST_F(ReferenceTest, SetOperations) {
  ExpectAgree(R"(doc("s.xml")//item | doc("s.xml")//dept)");
  ExpectAgree(R"(doc("s.xml")//* intersect doc("s.xml")//item)");
  ExpectAgree(R"(doc("s.xml")//dept except doc("s.xml")//dept[item])");
}

// Randomized differential sweep with the same generator family the
// equivalence tests use, but compared against the reference interpreter.
TEST_F(ReferenceTest, RandomizedQueries) {
  uint64_t state = 0x5eed;
  auto next = [&] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 60; ++i) {
    int price = static_cast<int>(next() % 40);
    int k = 1 + static_cast<int>(next() % 3);
    std::string query;
    switch (next() % 6) {
      case 0:
        query = "count(doc(\"s.xml\")//item[@price > " +
                std::to_string(price) + "])";
        break;
      case 1:
        query = "for $d in doc(\"s.xml\")/shop/dept return count($d/item[" +
                std::to_string(k) + "])";
        break;
      case 2:
        query = "doc(\"s.xml\")//item[" + std::to_string(k) + "]/name";
        break;
      case 3:
        query = "sum(doc(\"s.xml\")//item[@price <= " +
                std::to_string(price) + "]/@price)";
        break;
      case 4:
        query = "for $i in doc(\"s.xml\")//item order by number($i/@price) "
                "return concat($i/name, \"-\", " +
                std::to_string(price) + ")";
        break;
      default:
        query = "(doc(\"s.xml\")//tag, doc(\"s.xml\")//name)[" +
                std::to_string(k) + "]";
        break;
    }
    ExpectAgree(query);
  }
}

// Scalar edge cases swept by the correctness pass: both stacks must
// agree on F&O integer semantics — sign rules, exactness past 2^53,
// INT64 boundaries, and the FOAR0001/FOAR0002 error conditions (where
// agreement means both fail).
TEST_F(ReferenceTest, ScalarEdgeCases) {
  // idiv truncation and mod sign rules, all sign combinations.
  ExpectAgree("7 idiv 2");
  ExpectAgree("7 idiv -2");
  ExpectAgree("-7 idiv 2");
  ExpectAgree("-7 idiv -2");
  ExpectAgree("7 mod 2");
  ExpectAgree("7 mod -2");
  ExpectAgree("-7 mod 2");
  ExpectAgree("-7 mod -2");
  // Exactness beyond the double mantissa (pre-fix: idiv lost the +1).
  ExpectAgree("9007199254740993 idiv 1");
  ExpectAgree("9007199254740993 mod 9007199254740992");
  // INT64 boundaries. INT64_MIN has no literal form (the unary minus
  // applies to an out-of-range positive literal), so build it by
  // subtraction.
  ExpectAgree("(-9223372036854775807 - 1) idiv -1");  // FOAR0002 on both
  ExpectAgree("(-9223372036854775807 - 1) mod -1");   // exactly 0 on both
  ExpectAgree("9223372036854775807 + 1");             // FOAR0002 on both
  ExpectAgree("0 - (-9223372036854775807 - 1)");      // FOAR0002 on both
  ExpectAgree("-(-9223372036854775807 - 1)");         // unary negation
  ExpectAgree("3037000500 * 3037000500");             // mul overflow
  // Division by zero, every operator.
  ExpectAgree("1 div 0");
  ExpectAgree("1 idiv 0");
  ExpectAgree("1 mod 0");
  // Double-path idiv: truncation and the NaN/INF/overflow errors.
  ExpectAgree("7.5 idiv 2");
  ExpectAgree("-7.5 idiv 2");
  ExpectAgree("1.0 idiv 0.0");
  ExpectAgree("(1e300 * 1e300) idiv 2");  // INF dividend
  ExpectAgree("1e300 idiv 1.0");          // quotient overflows int64
}

}  // namespace
}  // namespace exrquy
