// xq — a small command-line XQuery processor on top of the library.
//
//   xq [options] <query.xq | ->
//     -d name=path    load an XML document (repeatable); fn:doc(name)
//     -e <expr>       inline query text instead of a file
//     --baseline      ignore order indifference (the paper's baseline)
//     --unordered     declare ordering unordered by default
//     --plan          print the optimized plan instead of executing
//     --sql           print the generated SQL:1999 instead of executing
//     --explain-order print, for every sort surviving optimization, the
//                     source constructs whose order demand keeps it alive
//     --profile       print the Table 2-style execution profile
//
// Example:
//   xq -d t.xml=fragment.xml -e 'count(doc("t.xml")//c)'
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algebra/dot.h"
#include "api/session.h"
#include "sql/sql_gen.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: xq [-d name=path]... [--baseline|--unordered] "
               "[--plan|--sql|--explain-order] [--profile] "
               "(-e <expr> | query.xq | -)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  exrquy::Session session;
  exrquy::QueryOptions options;
  std::string query;
  bool have_query = false;
  bool want_plan = false;
  bool want_sql = false;
  bool want_explain_order = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-d" && i + 1 < argc) {
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos) return Usage();
      exrquy::Status st = session.LoadDocumentFile(spec.substr(0, eq),
                                                   spec.substr(eq + 1));
      if (!st.ok()) {
        std::fprintf(stderr, "xq: %s\n", st.ToString().c_str());
        return 1;
      }
    } else if (arg == "-e" && i + 1 < argc) {
      query = argv[++i];
      have_query = true;
    } else if (arg == "--baseline") {
      options.enable_order_indifference = false;
    } else if (arg == "--unordered") {
      options.default_ordering = exrquy::OrderingMode::kUnordered;
    } else if (arg == "--plan") {
      want_plan = true;
    } else if (arg == "--sql") {
      want_sql = true;
    } else if (arg == "--explain-order") {
      want_explain_order = true;
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (!have_query) {
      if (arg == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        query = buf.str();
      } else {
        std::ifstream in(arg);
        if (!in) {
          std::fprintf(stderr, "xq: cannot open %s\n", arg.c_str());
          return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        query = buf.str();
      }
      have_query = true;
    } else {
      return Usage();
    }
  }
  if (!have_query) return Usage();

  if (want_explain_order) {
    exrquy::Result<exrquy::OrderExplanation> explained =
        session.ExplainOrder(query, options);
    if (!explained.ok()) {
      std::fprintf(stderr, "xq: %s\n",
                   explained.status().ToString().c_str());
      return 1;
    }
    if (explained->sorts.empty()) {
      std::printf("no sorts survive optimization: the plan is fully "
                  "order-indifferent\n");
      return 0;
    }
    for (const auto& sort : explained->sorts) {
      std::printf("%s  [%u]", sort.label.c_str(), sort.op);
      if (!sort.source.empty()) std::printf("  -- %s", sort.source.c_str());
      std::printf("\n");
      if (sort.reasons.empty()) {
        std::printf("  rank never consumed (removable by column pruning)\n");
      }
      for (const std::string& reason : sort.reasons) {
        std::printf("  ordered because: %s\n", reason.c_str());
      }
    }
    return 0;
  }

  if (want_plan || want_sql) {
    exrquy::Result<exrquy::QueryPlans> plans =
        session.Plan(query, options);
    if (!plans.ok()) {
      std::fprintf(stderr, "xq: %s\n", plans.status().ToString().c_str());
      return 1;
    }
    if (want_plan) {
      std::fputs(exrquy::PlanToText(*plans->dag, plans->optimized,
                                    session.strings())
                     .c_str(),
                 stdout);
    }
    if (want_sql) {
      exrquy::Result<std::string> sql = exrquy::PlanToSql(
          *plans->dag, plans->optimized, session.strings());
      if (!sql.ok()) {
        std::fprintf(stderr, "xq: %s\n", sql.status().ToString().c_str());
        return 1;
      }
      std::fputs(sql->c_str(), stdout);
    }
    return 0;
  }

  exrquy::Result<exrquy::QueryResult> r = session.Execute(query, options);
  if (!r.ok()) {
    std::fprintf(stderr, "xq: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", r->serialized.c_str());
  if (options.profile) {
    std::fprintf(stderr, "\n%s", r->profile.ToString().c_str());
  }
  return 0;
}
