// Unit tests for the algebra DAG: schema computation, hash-consing
// (plan sharing), constructor identity, topological reachability, plan
// statistics and DOT rendering.
#include <gtest/gtest.h>

#include "algebra/algebra.h"
#include "algebra/dot.h"
#include "algebra/stats.h"

namespace exrquy {
namespace {

using col::item;
using col::iter;
using col::pos;

OpId Loop1(Dag* dag) {
  LitTable t;
  t.cols = {iter()};
  t.rows = {{Value::Int(1)}};
  return dag->Lit(std::move(t));
}

TEST(AlgebraTest, LitSchemaAndHashConsing) {
  Dag dag;
  OpId a = Loop1(&dag);
  OpId b = Loop1(&dag);
  EXPECT_EQ(a, b);  // identical literals share one node
  EXPECT_EQ(dag.op(a).schema, (std::vector<ColId>{iter()}));
}

TEST(AlgebraTest, ProjectRenames) {
  Dag dag;
  OpId l = Loop1(&dag);
  ColId out = ColSym("renamed");
  OpId p = dag.Project(l, {{out, iter()}});
  EXPECT_EQ(dag.op(p).schema, (std::vector<ColId>{out}));
}

TEST(AlgebraTest, AttachConstBuildsCrossWithSingletonLit) {
  Dag dag;
  OpId l = Loop1(&dag);
  OpId a = dag.AttachConst(l, pos(), Value::Int(1));
  const Op& op = dag.op(a);
  EXPECT_EQ(op.kind, OpKind::kCross);
  EXPECT_TRUE(op.HasCol(iter()));
  EXPECT_TRUE(op.HasCol(pos()));
  const Op& lit = dag.op(op.children[1]);
  EXPECT_EQ(lit.kind, OpKind::kLit);
  EXPECT_EQ(lit.lit.rows.size(), 1u);
}

TEST(AlgebraTest, SharedSubplansReuseIds) {
  Dag dag;
  OpId l = Loop1(&dag);
  OpId a1 = dag.AttachConst(l, pos(), Value::Int(1));
  OpId a2 = dag.AttachConst(l, pos(), Value::Int(1));
  OpId a3 = dag.AttachConst(l, pos(), Value::Int(2));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, a3);
}

TEST(AlgebraTest, ConstructorsNeverShared) {
  Dag dag;
  OpId l = Loop1(&dag);
  OpId content = dag.AttachConst(
      dag.AttachConst(l, pos(), Value::Int(1)), item(), Value::Int(7));
  StrId name = 1;
  OpId e1 = dag.Elem(name, content, l);
  OpId e2 = dag.Elem(name, content, l);
  EXPECT_NE(e1, e2);  // distinct node identities
}

TEST(AlgebraTest, RowNumAddsColumn) {
  Dag dag;
  OpId l = Loop1(&dag);
  OpId q = dag.AttachConst(l, pos(), Value::Int(1));
  OpId rn = dag.RowNum(q, ColSym("rank"), {{pos(), false}}, iter());
  EXPECT_TRUE(dag.op(rn).HasCol(ColSym("rank")));
  EXPECT_EQ(dag.op(rn).schema.size(), 3u);
}

TEST(AlgebraTest, UnionRequiresSameColumnSet) {
  Dag dag;
  OpId l = Loop1(&dag);
  OpId a = dag.AttachConst(l, pos(), Value::Int(1));
  OpId b = dag.AttachConst(l, pos(), Value::Int(2));
  OpId u = dag.Union(a, b);
  EXPECT_EQ(dag.op(u).schema.size(), 2u);
}

TEST(AlgebraTest, ReachableFromIsTopological) {
  Dag dag;
  OpId l = Loop1(&dag);
  OpId a = dag.AttachConst(l, pos(), Value::Int(1));
  OpId b = dag.AttachConst(a, item(), Value::Int(2));
  OpId f = dag.Fun(b, FunKind::kAdd, ColSym("sum2"), {pos(), item()});
  std::vector<OpId> order = dag.ReachableFrom(f);
  for (size_t i = 0; i < order.size(); ++i) {
    for (OpId c : dag.op(order[i]).children) {
      // Children appear before their parents.
      auto it = std::find(order.begin(), order.begin() + i, c);
      EXPECT_NE(it, order.begin() + i);
    }
  }
  EXPECT_EQ(order.back(), f);
}

TEST(AlgebraTest, ReachableSkipsUnrelated) {
  Dag dag;
  OpId l = Loop1(&dag);
  OpId a = dag.AttachConst(l, pos(), Value::Int(1));
  OpId unrelated = dag.AttachConst(l, item(), Value::Int(9));
  std::vector<OpId> order = dag.ReachableFrom(a);
  EXPECT_EQ(std::find(order.begin(), order.end(), unrelated), order.end());
}

TEST(AlgebraTest, PlanStatsTallies) {
  Dag dag;
  OpId l = Loop1(&dag);
  OpId a = dag.AttachConst(l, pos(), Value::Int(1));
  OpId rn = dag.RowNum(a, ColSym("r1"), {{pos(), false}}, kNoCol);
  OpId ri = dag.RowId(rn, ColSym("r2"));
  PlanStats stats = CollectPlanStats(dag, ri);
  EXPECT_EQ(stats.rownum_ops, 1u);
  EXPECT_EQ(stats.rowid_ops, 1u);
  EXPECT_EQ(stats.total_ops, 5u);  // lit, lit, cross, rownum, rowid
  EXPECT_NE(stats.ToString().find("1 %"), std::string::npos);
}

TEST(AlgebraTest, SetProvKeepsFirstLabel) {
  Dag dag;
  OpId l = Loop1(&dag);
  dag.SetProv(l, "first");
  dag.SetProv(l, "second");
  EXPECT_EQ(dag.op(l).prov, "first");
}

TEST(AlgebraTest, DotRenderingMentionsOperators) {
  Dag dag;
  StrPool strings;
  OpId l = Loop1(&dag);
  OpId st = dag.Step(dag.AttachConst(l, item(), Value::Node(0)),
                     Axis::kDescendant,
                     NodeTest::Name(strings.Intern("item")));
  OpId rn = dag.RowNum(st, pos(), {{item(), false}}, iter());
  std::string dot = PlanToDot(dag, rn, strings);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("descendant::item"), std::string::npos);
  EXPECT_NE(dot.find("RowNum pos:<item>|iter"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(AlgebraTest, OpToStringShapes) {
  Dag dag;
  StrPool strings;
  OpId l = Loop1(&dag);
  EXPECT_NE(OpToString(dag, l, strings).find("Lit"), std::string::npos);
  OpId d = dag.Distinct(l);
  EXPECT_EQ(OpToString(dag, d, strings), "Distinct");
  OpId sj = dag.SemiJoin(l, l, {iter()});
  EXPECT_EQ(OpToString(dag, sj, strings), "SemiJoin on iter");
  OpId ag = dag.Aggr(l, AggrKind::kCount, ColSym("cnt"), kNoCol, iter());
  EXPECT_EQ(OpToString(dag, ag, strings), "Aggr cnt:count|iter");
}

}  // namespace
}  // namespace exrquy
