file(REMOVE_RECURSE
  "CMakeFiles/exrquy_xquery.dir/xquery/ast.cc.o"
  "CMakeFiles/exrquy_xquery.dir/xquery/ast.cc.o.d"
  "CMakeFiles/exrquy_xquery.dir/xquery/lexer.cc.o"
  "CMakeFiles/exrquy_xquery.dir/xquery/lexer.cc.o.d"
  "CMakeFiles/exrquy_xquery.dir/xquery/normalize.cc.o"
  "CMakeFiles/exrquy_xquery.dir/xquery/normalize.cc.o.d"
  "CMakeFiles/exrquy_xquery.dir/xquery/parser.cc.o"
  "CMakeFiles/exrquy_xquery.dir/xquery/parser.cc.o.d"
  "libexrquy_xquery.a"
  "libexrquy_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exrquy_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
