file(REMOVE_RECURSE
  "CMakeFiles/test_node_store.dir/test_node_store.cc.o"
  "CMakeFiles/test_node_store.dir/test_node_store.cc.o.d"
  "test_node_store"
  "test_node_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
