// Regenerates the committed optimized-plan goldens:
//
//   ./dump_plans ../tests/corpus/plans
//
// Writes one <query>_<mode>.txt per XMark query and ordering mode, with
// exactly the options tests/test_dataflow.cc's golden test uses (the
// fact-driven rewrites off, so the plans stay comparable across fact
// changes; structural rewrites — including join recognition — on).
//
//   ./dump_plans - [--defaults]
//
// dumps to stdout instead, with `--defaults` switching to the default
// QueryOptions — handy when debugging what shape the optimizer actually
// reaches in production configuration.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "algebra/dot.h"
#include "api/session.h"
#include "xmark/queries.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: dump_plans <outdir>|- [--defaults]\n");
    return 2;
  }
  const std::string outdir = argv[1];
  const bool to_stdout = outdir == "-";
  const bool defaults =
      argc > 2 && std::strcmp(argv[2], "--defaults") == 0;
  exrquy::Session session;
  for (const exrquy::XMarkQuery& q : exrquy::XMarkQueries()) {
    for (bool unordered : {false, true}) {
      exrquy::QueryOptions options;
      if (unordered) {
        options.default_ordering = exrquy::OrderingMode::kUnordered;
      }
      if (!defaults) {
        options.distinct_by_keys = false;
        options.empty_short_circuit = false;
        options.rownum_by_keys = false;
        options.rownum_by_od = false;
      }
      exrquy::Result<exrquy::QueryPlans> p =
          session.Plan(q.text, options);
      if (!p.ok()) {
        std::fprintf(stderr, "dump_plans: %s: %s\n", q.name,
                     p.status().ToString().c_str());
        return 1;
      }
      std::string text =
          exrquy::PlanToText(*p->dag, p->optimized, session.strings());
      std::string name =
          std::string(q.name) + (unordered ? "_unordered" : "_ordered");
      if (to_stdout) {
        std::printf("==== %s ====\n%s\n", name.c_str(), text.c_str());
      } else {
        std::ofstream out(outdir + "/" + name + ".txt",
                          std::ios::binary | std::ios::trunc);
        out << text;
        if (!out) {
          std::fprintf(stderr, "dump_plans: cannot write %s\n",
                       name.c_str());
          return 1;
        }
      }
    }
  }
  return 0;
}
