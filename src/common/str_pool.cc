#include "common/str_pool.h"

#include "common/check.h"

namespace exrquy {

StrPool::StrPool() {
  StrId id = Intern("");
  EXRQUY_CHECK(id == kEmpty);
}

StrId StrPool::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  StrId id = static_cast<StrId>(strings_.size());
  // Store the string first; the string_view key aliases the stored copy,
  // whose address is stable because strings_ is a deque.
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

const std::string& StrPool::Get(StrId id) const {
  EXRQUY_DCHECK(id < strings_.size());
  return strings_[id];
}

}  // namespace exrquy
