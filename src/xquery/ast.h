// Abstract syntax for the supported XQuery subset (see DESIGN.md). The
// parser produces this AST; the normalizer (normalize.h) performs the
// XQuery -> Core mapping J.K of Section 2.2 on it; the compiler
// (compiler/compile.h) maps it to relational algebra.
#ifndef EXRQUY_XQUERY_AST_H_
#define EXRQUY_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "xml/step.h"

namespace exrquy {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
  kIntLit,
  kDoubleLit,
  kStringLit,
  kEmptySeq,     // ()
  kVarRef,
  kContextItem,  // '.' (inside predicates)
  kSequence,     // n-ary ','
  kFlwor,
  kIf,
  kQuantified,   // some / every
  kPathStep,     // children[0]/axis::test
  kPathFilter,   // children[0]/(children[1]) — expr step with context item
  kPredicate,    // children[0] [ children[1] ]
  kSetOp,        // union / intersect / except
  kGeneralComp,  // = != < <= > >=
  kValueComp,    // eq ne lt le gt ge
  kNodeComp,     // << >> is
  kArith,        // + - * div idiv mod, unary -
  kRange,        // e1 to e2
  kLogical,      // and / or
  kFunctionCall,
  kOrderedExpr,  // ordered { e } / unordered { e }
  kElementCtor,
  kAttributeCtor,  // only as child of kElementCtor
  kTextCtor,       // text { e }
};

enum class BinOp : uint8_t {
  // kGeneralComp / kValueComp
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // kNodeComp
  kBefore,
  kAfter,
  kIs,
  // kArith
  kAdd,
  kSub,
  kMul,
  kDiv,
  kIDiv,
  kMod,
  kNeg,  // unary
  // kLogical
  kAnd,
  kOr,
  // kSetOp
  kUnion,
  kIntersect,
  kExcept,
};

enum class OrderingMode : uint8_t { kOrdered, kUnordered };

struct FlworClause {
  enum class Kind : uint8_t { kFor, kLet } kind = Kind::kFor;
  std::string var;      // without '$'
  std::string pos_var;  // 'at $p' (for clauses; empty if absent)
  ExprPtr expr;
};

struct OrderSpec {
  ExprPtr key;
  bool descending = false;
};

// Attribute-value-template / element-content part: literal text or an
// enclosed expression.
struct CtorPart {
  std::string text;  // used when expr == nullptr
  ExprPtr expr;
};

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}

  ExprKind kind;

  // Generic children; meaning depends on kind:
  //   kSequence: the items
  //   kIf: [condition, then, else]
  //   kQuantified: [domain, satisfies]
  //   kPathStep / kPredicate / kSetOp / comparisons / arith / logical:
  //     operands
  //   kFunctionCall: arguments
  //   kOrderedExpr / kTextCtor: [body]
  //   kElementCtor: attribute ctors (kAttributeCtor) first, then content
  //     is in `parts`
  std::vector<ExprPtr> children;

  // Literals.
  int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;  // also: variable name, function name

  BinOp op = BinOp::kEq;

  // kPathStep:
  Axis axis = Axis::kChild;
  NodeTest::Kind test_kind = NodeTest::Kind::kAnyKind;
  std::string test_name;

  // kFlwor:
  std::vector<FlworClause> clauses;
  ExprPtr where;
  std::vector<OrderSpec> order_by;
  ExprPtr ret;

  // kOrderedExpr:
  OrderingMode mode = OrderingMode::kOrdered;

  // kElementCtor / kAttributeCtor: name in string_value, content parts:
  std::vector<CtorPart> parts;
};

ExprPtr MakeExpr(ExprKind kind);
ExprPtr CloneExpr(const Expr& e);

// Compact single-line rendering (tests, debugging).
std::string ExprToString(const Expr& e);

// A user-declared function: declare function local:name($p1, ...) { body }.
struct FunctionDecl {
  std::string name;  // "local:name"
  std::vector<std::string> params;
  ExprPtr body;
};

// A parsed query module: prolog + body.
struct Query {
  OrderingMode default_ordering = OrderingMode::kOrdered;
  bool has_ordering_decl = false;
  std::vector<FunctionDecl> functions;
  ExprPtr body;
};

}  // namespace exrquy

#endif  // EXRQUY_XQUERY_AST_H_
