
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/eval.cc" "src/CMakeFiles/exrquy_engine.dir/engine/eval.cc.o" "gcc" "src/CMakeFiles/exrquy_engine.dir/engine/eval.cc.o.d"
  "/root/repo/src/engine/profile.cc" "src/CMakeFiles/exrquy_engine.dir/engine/profile.cc.o" "gcc" "src/CMakeFiles/exrquy_engine.dir/engine/profile.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/CMakeFiles/exrquy_engine.dir/engine/table.cc.o" "gcc" "src/CMakeFiles/exrquy_engine.dir/engine/table.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/CMakeFiles/exrquy_engine.dir/engine/value.cc.o" "gcc" "src/CMakeFiles/exrquy_engine.dir/engine/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exrquy_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exrquy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
