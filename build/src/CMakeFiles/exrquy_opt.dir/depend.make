# Empty dependencies file for exrquy_opt.
# This may be replaced when dependencies are built.
