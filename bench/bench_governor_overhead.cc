// Overhead of the resource governor on the XMark query set: every query
// executed with the governor disarmed (no token, no deadline, no budget
// — the default path pays only untaken branches) and fully armed (a
// live cancellation token, a far-future deadline, and a huge-but-finite
// memory budget, so every poll site and every charge site does real
// work), median wall clock each, dumped as a table and as
// BENCH_governor.json:
//
//   { "bench": "governor_overhead",
//     "scale": 0.016, "doc_bytes": N, "threads": N,
//     "queries": [ {"name": "Q1", "off_ms": t, "armed_ms": t,
//                   "overhead_pct": p}, ... ],
//     "geomean_overhead_pct": p }
//
// The armed run re-checks byte-identity against the disarmed run on
// every query — a cheap governor that changed the answer would be no
// governor at all. Target: < 2% geomean overhead (EXPERIMENTS.md).
//
// EXRQUY_BENCH_SCALE overrides the document scale factor;
// EXRQUY_BENCH_THREADS the thread count (default 1, the configuration
// where per-op poll cost is least amortized and thus worst-case).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/governor.h"

namespace exrquy {
namespace {

void Run() {
  double scale = bench::EnvScale("EXRQUY_BENCH_SCALE", 0.016);
  int threads = static_cast<int>(bench::EnvScale("EXRQUY_BENCH_THREADS", 1));
  size_t doc_bytes = 0;
  auto session = bench::MakeXMarkSession(scale, &doc_bytes);

  QueryOptions off;
  off.num_threads = threads;

  QueryOptions armed;
  armed.num_threads = threads;
  armed.cancel = std::make_shared<CancelToken>();
  armed.deadline_ms = 86400000;            // 24h: checked, never hit
  armed.memory_budget = size_t{1} << 40;   // 1 TiB: charged, never hit

  std::printf(
      "Governor overhead — XMark, %.3f scale (%zu KB), %d thread(s)\n\n",
      scale, doc_bytes / 1024, threads);
  std::printf("%-6s  %10s  %10s  %9s\n", "query", "off ms", "armed ms",
              "overhead");

  struct Row {
    std::string name;
    double off_ms;
    double armed_ms;
  };
  std::vector<Row> rows;
  double log_sum = 0;

  for (const XMarkQuery& query : XMarkQueries()) {
    QueryResult off_result;
    QueryResult armed_result;
    double off_ms =
        bench::MedianExecMs(session.get(), query.text, off, 7, &off_result);
    double armed_ms = bench::MedianExecMs(session.get(), query.text, armed, 7,
                                          &armed_result);
    if (off_ms < 0 || armed_ms < 0) continue;
    if (armed_result.serialized != off_result.serialized) {
      std::fprintf(stderr, "%s: armed result differs from disarmed!\n",
                   query.name.c_str());
      std::exit(1);
    }
    double pct = off_ms > 0 ? (armed_ms / off_ms - 1.0) * 100.0 : 0.0;
    std::printf("%-6s  %10.3f  %10.3f  %+8.2f%%\n", query.name.c_str(),
                off_ms, armed_ms, pct);
    log_sum += std::log(armed_ms > 0 && off_ms > 0 ? armed_ms / off_ms : 1.0);
    rows.push_back({query.name, off_ms, armed_ms});
  }

  double geomean_pct =
      rows.empty() ? 0.0
                   : (std::exp(log_sum / static_cast<double>(rows.size())) -
                      1.0) * 100.0;
  std::printf("\ngeomean overhead: %+.2f%%\n", geomean_pct);

  std::FILE* out = std::fopen("BENCH_governor.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_governor.json\n");
    std::exit(1);
  }
  std::fprintf(out,
               "{\n  \"bench\": \"governor_overhead\",\n"
               "  \"scale\": %g,\n  \"doc_bytes\": %zu,\n"
               "  \"threads\": %d,\n  \"queries\": [\n",
               scale, doc_bytes, threads);
  for (size_t r = 0; r < rows.size(); ++r) {
    double pct = rows[r].off_ms > 0
                     ? (rows[r].armed_ms / rows[r].off_ms - 1.0) * 100.0
                     : 0.0;
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"off_ms\": %.3f, "
                 "\"armed_ms\": %.3f, \"overhead_pct\": %.2f}%s\n",
                 rows[r].name.c_str(), rows[r].off_ms, rows[r].armed_ms, pct,
                 r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"geomean_overhead_pct\": %.2f\n}\n",
               geomean_pct);
  std::fclose(out);
  std::printf("wrote BENCH_governor.json\n");
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
