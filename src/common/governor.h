// Resource-governance primitives shared by every layer of the stack:
//
//  * CancelToken — a shareable, thread-safe cancellation flag. The engine
//    polls it cooperatively at operator and chunk boundaries, so an
//    in-flight query aborts within one chunk's work of the Cancel() call
//    and surfaces as a kCancelled Status (never a torn result).
//  * MemoryBudget — a per-query byte accountant charged by the engine's
//    intermediate tables (engine/eval.cc TrackTable), constructed-node
//    growth (xml/node_store.cc AppendNode) and string interning
//    (common/str_pool.cc Intern). Accounting is advisory-at-charge,
//    enforced-at-boundary: a charge that crosses the limit marks the
//    budget exhausted (the allocation itself still happens — callers
//    deep in void paths cannot unwind), and the evaluator converts the
//    sticky flag into a clean kResourceExhausted Status at the next
//    operator or chunk boundary. Overshoot is therefore bounded by one
//    chunk's allocations, the same latency bound cancellation has.
//
// Both types sit in common/ (not engine/) because the charge sites span
// common/, xml/ and engine/, and the dependency arrows all point at
// common. The deterministic fault-injection hook (FailChargeAt) lives
// here too so "fail allocation N" can be driven without the budget
// knowing anything about the harness (engine/faults.h) that configures
// it.
#ifndef EXRQUY_COMMON_GOVERNOR_H_
#define EXRQUY_COMMON_GOVERNOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace exrquy {

// Shareable cancellation flag. Hand the same token to
// QueryOptions::cancel and to whatever timeout/supervisor thread may
// decide to abort the query; Cancel() is safe from any thread, any
// number of times.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

// Per-query memory accountant. Thread-safe; all methods are lock-free.
// limit_bytes == 0 means "account but never exhaust" (the profiler still
// gets peak/charged numbers).
class MemoryBudget {
 public:
  explicit MemoryBudget(size_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  // Records an allocation of `bytes`. Returns false — and latches
  // exhausted() — when this charge crossed the limit or hit the
  // fault-injection point; the caller may ignore the return value and
  // rely on a downstream cooperative exhausted() poll.
  bool Charge(size_t bytes) {
    uint64_t n = charges_.fetch_add(1, std::memory_order_relaxed) + 1;
    size_t now = charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
    uint64_t fail_at = fail_charge_at_.load(std::memory_order_relaxed);
    if ((fail_at != 0 && n >= fail_at) || (limit_ != 0 && now > limit_)) {
      exhausted_.store(true, std::memory_order_release);
      return false;
    }
    return !exhausted();
  }

  // Returns bytes previously Charge()d (e.g. a released intermediate
  // table, or nodes dropped by NodeStore::TruncateTo). Never clears the
  // exhausted latch: once a query has crossed its budget it stays dead.
  void Release(size_t bytes) {
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  bool exhausted() const {
    return exhausted_.load(std::memory_order_acquire);
  }

  size_t limit() const { return limit_; }
  size_t charged() const {
    return charged_.load(std::memory_order_relaxed);
  }

  // True when the high-water mark crossed `fraction` of the limit — the
  // memory-pressure signal the query service's graceful-degradation path
  // reacts to (api/service.h). Always false with no limit.
  bool PeakAboveFraction(double fraction) const {
    return limit_ != 0 &&
           static_cast<double>(peak()) >=
               fraction * static_cast<double>(limit_);
  }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t charges() const {
    return charges_.load(std::memory_order_relaxed);
  }

  // Deterministic fault injection: charge number `n` (1-based, counted
  // across all charge sites) fails regardless of the limit. 0 disarms.
  void FailChargeAt(uint64_t n) {
    fail_charge_at_.store(n, std::memory_order_relaxed);
  }

 private:
  const size_t limit_;
  std::atomic<size_t> charged_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<uint64_t> charges_{0};
  std::atomic<uint64_t> fail_charge_at_{0};
  std::atomic<bool> exhausted_{false};
};

}  // namespace exrquy

#endif  // EXRQUY_COMMON_GOVERNOR_H_
