file(REMOVE_RECURSE
  "CMakeFiles/exrquy_ref.dir/ref/interp.cc.o"
  "CMakeFiles/exrquy_ref.dir/ref/interp.cc.o.d"
  "libexrquy_ref.a"
  "libexrquy_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exrquy_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
