#include "common/status.h"

namespace exrquy {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kCardinalityError:
      return "CardinalityError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status TypeError(std::string message) {
  return Status(StatusCode::kTypeError, std::move(message));
}
Status CardinalityError(std::string message) {
  return Status(StatusCode::kCardinalityError, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status Cancelled(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

}  // namespace exrquy
