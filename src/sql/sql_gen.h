// SQL:1999 code generation — the "relational back-end" face of the
// relational XQuery idea (Grust et al., "XQuery on SQL Hosts", VLDB
// 2004; Section 3 of the paper: the algebra "has been guided by the
// processing capabilities of SQL-centric relational database kernels",
// and % "exactly mimics the ROW_NUMBER() OVER (PARTITION BY c ORDER BY
// b) AS a ranking operator found in the SQL:1999 OLAP amendment").
//
// A plan DAG renders as a WITH chain of common table expressions, one
// per operator, evaluated against a host-side document relation
//
//   doc(pre BIGINT, size BIGINT, level INT, kind TEXT, name TEXT,
//       value TEXT, parent BIGINT, doc_name TEXT)
//
// — the pre/size/level encoding of Figure 5. XPath steps compile to
// range self-joins over that table (descendant: pre BETWEEN c+1 AND
// c+size); % compiles to ROW_NUMBER() with ORDER BY; # compiles to
// ROW_NUMBER() OVER () — a free numbering. Node constructors and a few
// dynamic-typing helpers are rendered as calls to host UDFs (xq_*),
// which a hosting kernel provides; the generator documents each one it
// needs in the emitted header comment.
//
// The generated SQL is *plan documentation and portability evidence*:
// this repository executes plans with its own engine (engine/eval.h);
// the generator is tested for structural faithfulness, not run against
// a live RDBMS.
#ifndef EXRQUY_SQL_SQL_GEN_H_
#define EXRQUY_SQL_SQL_GEN_H_

#include <string>

#include "algebra/algebra.h"
#include "common/status.h"

namespace exrquy {

struct SqlGenOptions {
  // Emit the header comment listing the required host UDFs.
  bool emit_header = true;
  // Pretty-print with one CTE per line block.
  bool pretty = true;
};

// Renders the sub-DAG rooted at `root` as one SQL query. Fails only on
// malformed plans (never on valid compiler output).
Result<std::string> PlanToSql(const Dag& dag, OpId root,
                              const StrPool& strings,
                              const SqlGenOptions& options = {});

}  // namespace exrquy

#endif  // EXRQUY_SQL_SQL_GEN_H_
