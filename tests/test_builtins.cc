// Built-in function battery: range expressions, string functions,
// numeric functions, node-name accessors, string-join, and fn:reverse
// (whose order sensitivity must survive all rewriting).
#include <gtest/gtest.h>

#include "api/session.h"

namespace exrquy {
namespace {

class BuiltinsTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        session_.LoadDocument("d.xml", "<r a=\"1\"><x>one</x><y/></r>")
            .ok());
  }

  QueryOptions Opts() {
    QueryOptions o;
    o.enable_order_indifference = GetParam();
    return o;
  }

  std::string Run(const std::string& query) {
    Result<QueryResult> r = session_.Execute(query, Opts());
    EXPECT_TRUE(r.ok()) << query << "\n  " << r.status().ToString();
    return r.ok() ? r->serialized : "<error>";
  }

  Session session_;
};

TEST_P(BuiltinsTest, RangeExpression) {
  EXPECT_EQ(Run("1 to 5"), "1 2 3 4 5");
  EXPECT_EQ(Run("3 to 3"), "3");
  EXPECT_EQ(Run("5 to 3"), "");
  EXPECT_EQ(Run("count(1 to 100)"), "100");
  EXPECT_EQ(Run("sum(1 to 10)"), "55");
}

TEST_P(BuiltinsTest, RangeInsideFor) {
  EXPECT_EQ(Run("for $i in 1 to 3 return $i * $i"), "1 4 9");
  EXPECT_EQ(Run("for $i in 1 to 2 return (for $j in 1 to $i return $j)"),
            "1 1 2");
}

TEST_P(BuiltinsTest, ReverseIsOrderSensitive) {
  EXPECT_EQ(Run("reverse((1, 2, 3))"), "3 2 1");
  EXPECT_EQ(Run("reverse(())"), "");
  EXPECT_EQ(Run("for $x in reverse(1 to 3) return $x * 10"), "30 20 10");
  // reverse(reverse(e)) = e, even with all rewrites on.
  EXPECT_EQ(Run("reverse(reverse((1,2,3)))"), "1 2 3");
}

TEST_P(BuiltinsTest, StringJoin) {
  EXPECT_EQ(Run(R"(string-join(("a","b","c"), "-"))"), "a-b-c");
  EXPECT_EQ(Run(R"(string-join((), "-"))"), "");
  EXPECT_EQ(Run(R"(string-join(("x"), ", "))"), "x");
  // Sequence order matters for string-join.
  EXPECT_EQ(Run(R"(string-join(reverse(("a","b")), ""))"), "ba");
}

TEST_P(BuiltinsTest, StartsEndsWith) {
  EXPECT_EQ(Run(R"(starts-with("staircase", "stair"))"), "true");
  EXPECT_EQ(Run(R"(starts-with("a", "abc"))"), "false");
  EXPECT_EQ(Run(R"(ends-with("staircase", "case"))"), "true");
  EXPECT_EQ(Run(R"(ends-with("staircase", "stair"))"), "false");
}

TEST_P(BuiltinsTest, CaseFolding) {
  EXPECT_EQ(Run(R"(upper-case("MonetDB/xq"))"), "MONETDB/XQ");
  EXPECT_EQ(Run(R"(lower-case("MonetDB"))"), "monetdb");
}

TEST_P(BuiltinsTest, NormalizeSpace) {
  EXPECT_EQ(Run(R"(normalize-space("  a   b  c "))"), "a b c");
  EXPECT_EQ(Run(R"(normalize-space(""))"), "");
}

TEST_P(BuiltinsTest, Substring) {
  EXPECT_EQ(Run(R"(substring("motor car", 6))"), " car");
  EXPECT_EQ(Run(R"(substring("metadata", 4, 3))"), "ada");
  EXPECT_EQ(Run(R"(substring("12345", 0, 3))"), "12");
  EXPECT_EQ(Run(R"(substring("12345", 1.5, 2.6))"), "234");
}

TEST_P(BuiltinsTest, NumericFunctions) {
  EXPECT_EQ(Run("abs(-7)"), "7");
  EXPECT_EQ(Run("abs(-2.5)"), "2.5");
  EXPECT_EQ(Run("floor(2.7)"), "2");
  EXPECT_EQ(Run("ceiling(2.1)"), "3");
  EXPECT_EQ(Run("round(2.5)"), "3");
  EXPECT_EQ(Run("round(-2.5)"), "-2");  // round half toward +inf
  EXPECT_EQ(Run("floor(5)"), "5");
}

TEST_P(BuiltinsTest, NodeNames) {
  EXPECT_EQ(Run(R"(for $n in doc("d.xml")/r/* return name($n))"), "x y");
  EXPECT_EQ(Run(R"(name(doc("d.xml")/r/@a))"), "a");
  EXPECT_EQ(Run(R"(local-name(doc("d.xml")/r))"), "r");
}

TEST_P(BuiltinsTest, CardinalityChecksPass) {
  EXPECT_EQ(Run("zero-or-one(())"), "");
  EXPECT_EQ(Run("zero-or-one((7))"), "7");
  EXPECT_EQ(Run("exactly-one(5)"), "5");
  EXPECT_EQ(Run("count(one-or-more((1,2,3)))"), "3");
  // Per-iteration checks inside a FLWOR.
  EXPECT_EQ(Run(R"(for $n in doc("d.xml")/r/x
                   return exactly-one($n/text()))"),
            "one");
}

TEST_P(BuiltinsTest, CardinalityChecksFail) {
  auto code = [&](const std::string& q) {
    Result<QueryResult> r = session_.Execute(q, Opts());
    EXPECT_FALSE(r.ok()) << q;
    return r.ok() ? StatusCode::kOk : r.status().code();
  };
  EXPECT_EQ(code("zero-or-one((1,2))"), StatusCode::kCardinalityError);
  EXPECT_EQ(code("exactly-one(())"), StatusCode::kCardinalityError);
  EXPECT_EQ(code("exactly-one((1,2))"), StatusCode::kCardinalityError);
  EXPECT_EQ(code("one-or-more(())"), StatusCode::kCardinalityError);
  // The check is per iteration: <y/> has no text.
  EXPECT_EQ(code(R"(for $n in doc("d.xml")/r/*
                    return exactly-one($n/text()))"),
            StatusCode::kCardinalityError);
}

TEST_P(BuiltinsTest, MixedWithAggregates) {
  EXPECT_EQ(Run("max(for $i in 1 to 5 return $i mod 3)"), "2");
  EXPECT_EQ(Run("count((1 to 3)[. mod 2 = 1])"), "2");
}

TEST_P(BuiltinsTest, PositionPredicates) {
  EXPECT_EQ(Run("(10, 20, 30, 40)[position() < 3]"), "10 20");
  EXPECT_EQ(Run("(10, 20, 30, 40)[position() >= 3]"), "30 40");
  EXPECT_EQ(Run("(10, 20, 30)[position() = 2]"), "20");
  EXPECT_EQ(Run("(10, 20, 30)[2 <= position()]"), "20 30");
  EXPECT_EQ(Run("(10, 20, 30)[position() != 2]"), "10 30");
  EXPECT_EQ(Run(R"(count(doc("d.xml")/r/*[position() > 1]))"), "1");
}

TEST_P(BuiltinsTest, Subsequence) {
  EXPECT_EQ(Run("subsequence((1,2,3,4,5), 2)"), "2 3 4 5");
  EXPECT_EQ(Run("subsequence((1,2,3,4,5), 2, 2)"), "2 3");
  EXPECT_EQ(Run("subsequence((1,2,3), 0, 2)"), "1");
  EXPECT_EQ(Run("subsequence((), 1, 2)"), "");
  EXPECT_EQ(Run("for $x in (1,2) return subsequence(($x, $x*10), 2, 1)"),
            "10 20");
}

INSTANTIATE_TEST_SUITE_P(Configs, BuiltinsTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "exploit" : "baseline";
                         });

}  // namespace
}  // namespace exrquy
