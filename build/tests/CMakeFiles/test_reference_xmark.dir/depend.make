# Empty dependencies file for test_reference_xmark.
# This may be replaced when dependencies are built.
