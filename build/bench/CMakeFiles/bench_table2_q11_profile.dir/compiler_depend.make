# Empty compiler generated dependencies file for bench_table2_q11_profile.
# This may be replaced when dependencies are built.
