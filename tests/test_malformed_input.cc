// Parser hardening: adversarial input must come back as a clean
// kInvalidArgument Status — never a stack overflow, a crash, or a
// partially mutated store. Three angles:
//
//   * generative depth attacks: both recursive-descent parsers (XML
//     elements, XQuery expressions and direct constructors) have
//     explicit depth limits (500 and 256), probed from both sides of
//     the boundary;
//   * a malformed-input corpus under tests/corpus/malformed/ — *.xml
//     files must be rejected by ParseXml, *.xq files by ParseQuery;
//   * state hygiene: a Session fed nothing but garbage for many rounds
//     neither grows its node store / string pool nor loses the ability
//     to run a real query.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/status.h"
#include "xml/node_store.h"
#include "xml/xml_parser.h"
#include "xquery/parser.h"

namespace exrquy {
namespace {

std::string NestedXml(size_t depth) {
  std::string xml;
  for (size_t i = 0; i < depth; ++i) xml += "<e>";
  xml += "x";
  for (size_t i = 0; i < depth; ++i) xml += "</e>";
  return xml;
}

TEST(MalformedXmlTest, DepthLimitRejectsDeepNesting) {
  StrPool strings;
  NodeStore store(&strings);
  Result<NodeIdx> r = ParseXml(&store, NestedXml(501));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("nesting"), std::string::npos)
      << r.status().ToString();
}

TEST(MalformedXmlTest, DepthLimitAdmitsDocumentsJustBelowIt) {
  StrPool strings;
  NodeStore store(&strings);
  EXPECT_TRUE(ParseXml(&store, NestedXml(499)).ok());
}

TEST(MalformedXmlTest, DepthLimitIsConfigurable) {
  StrPool strings;
  NodeStore store(&strings);
  XmlParseOptions options;
  options.max_depth = 10;
  EXPECT_FALSE(ParseXml(&store, NestedXml(11), options).ok());
  EXPECT_TRUE(ParseXml(&store, NestedXml(9), options).ok());
}

TEST(MalformedXQueryTest, DepthLimitRejectsDeepParens) {
  std::string q(300, '(');
  q += "1";
  q += std::string(300, ')');
  Result<Query> r = ParseQuery(q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("nesting"), std::string::npos)
      << r.status().ToString();
}

TEST(MalformedXQueryTest, DepthLimitAdmitsModerateParens) {
  std::string q(100, '(');
  q += "1";
  q += std::string(100, ')');
  EXPECT_TRUE(ParseQuery(q).ok());
}

TEST(MalformedXQueryTest, DepthLimitRejectsDeepConstructors) {
  std::string q;
  for (int i = 0; i < 300; ++i) q += "<e>";
  q += "x";
  for (int i = 0; i < 300; ++i) q += "</e>";
  Result<Query> r = ParseQuery(q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("nesting"), std::string::npos)
      << r.status().ToString();
}

TEST(MalformedXQueryTest, DepthLimitRejectsDeepFlwor) {
  std::string q;
  for (int i = 0; i < 300; ++i) q += "for $x in (1) return ";
  q += "1";
  EXPECT_FALSE(ParseQuery(q).ok());
}

// ---------------------------------------------------------------------
// Corpus: every file under tests/corpus/malformed is rejected with a
// Status (the suite completing at all proves no crash / no overflow).

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(MalformedCorpusTest, EveryCorpusFileIsRejectedCleanly) {
  std::filesystem::path dir(EXRQUY_TEST_CORPUS_DIR);
  dir /= "malformed";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  size_t xml_cases = 0;
  size_t xq_cases = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string text = ReadFile(entry.path());
    if (entry.path().extension() == ".xml") {
      ++xml_cases;
      StrPool strings;
      NodeStore store(&strings);
      Result<NodeIdx> r = ParseXml(&store, text);
      EXPECT_FALSE(r.ok()) << entry.path();
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
            << entry.path() << ": " << r.status().ToString();
      }
    } else if (entry.path().extension() == ".xq") {
      ++xq_cases;
      Result<Query> r = ParseQuery(text);
      EXPECT_FALSE(r.ok()) << entry.path();
    }
  }
  // The corpus actually shipped with the repo.
  EXPECT_GE(xml_cases, 5u);
  EXPECT_GE(xq_cases, 5u);
}

// ---------------------------------------------------------------------
// State hygiene under sustained garbage.

TEST(MalformedSessionTest, GarbageNeverGrowsOrPoisonsTheSession) {
  Session session;
  ASSERT_TRUE(session.LoadDocument("d.xml", "<r><a>1</a><a>2</a></r>").ok());
  size_t nodes = session.store().node_count();
  size_t fragments = session.store().fragment_count();
  size_t strings = session.strings().size();

  std::filesystem::path dir(EXRQUY_TEST_CORPUS_DIR);
  dir /= "malformed";
  std::vector<std::string> garbage = {NestedXml(600)};
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    garbage.push_back(ReadFile(entry.path()));
  }
  for (int round = 0; round < 5; ++round) {
    for (const std::string& text : garbage) {
      EXPECT_FALSE(session.Execute(text).ok());
      EXPECT_EQ(session.store().node_count(), nodes);
      EXPECT_EQ(session.store().fragment_count(), fragments);
      EXPECT_EQ(session.strings().size(), strings);
    }
  }
  Result<QueryResult> ok = session.Execute(R"(count(doc("d.xml")//a))");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->items, std::vector<std::string>{"2"});
}

}  // namespace
}  // namespace exrquy
