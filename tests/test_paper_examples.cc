// The paper's running examples as executable invariants, checked under
// the weakened semantics: what MUST still hold when order indifference
// is exploited (Section 2's interaction matrix, Figures 2 and 3), not
// just what may change.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "api/session.h"

namespace exrquy {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Figure 1's fragment, bound to $t via doc("t.xml")/a.
    ASSERT_TRUE(
        session_.LoadDocument("t.xml", "<a><b><c/><d/></b><c/></a>").ok());
  }

  std::vector<std::string> Items(const std::string& query,
                                 const QueryOptions& options) {
    Result<QueryResult> r = session_.Execute(query, options);
    EXPECT_TRUE(r.ok()) << query << ": " << r.status().ToString();
    return r.ok() ? r->items : std::vector<std::string>{};
  }

  static QueryOptions Unordered() {
    QueryOptions o;
    o.default_ordering = OrderingMode::kUnordered;
    return o;
  }

  Session session_;
};

// Expression (1): $t//(c|d) in ordered mode yields (c1, d, c2) — the
// document-order merge of the two steps.
TEST_F(PaperExamplesTest, Expression1DocumentOrder) {
  QueryOptions ordered;
  std::vector<std::string> items =
      Items(R"(for $t in doc("t.xml")/a return $t//(c|d))", ordered);
  EXPECT_EQ(items,
            (std::vector<std::string>{"<c/>", "<d/>", "<c/>"}));
}

// Expression (2): under unordered {}, any of the 3! = 6 permutations is
// admissible; the multiset is fixed. Our engine produces the
// concatenation order (c1, c2, d) the paper highlights as particularly
// efficient.
TEST_F(PaperExamplesTest, Expression2UnionAsConcatenation) {
  Result<QueryResult> r = session_.Execute(
      R"(unordered { for $t in doc("t.xml")/a return $t//(c|d) })",
      QueryOptions{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<std::string> sorted = r->items;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::string>{"<c/>", "<c/>", "<d/>"}));
}

// Expression (3): sequence order establishes document order in the new
// fragment — ($b << $d, $e/b << $e/d) = (true, false).
TEST_F(PaperExamplesTest, Expression3SeqEstablishesDocOrder) {
  for (bool unordered : {false, true}) {
    QueryOptions o;
    if (unordered) o = Unordered();
    std::vector<std::string> items = Items(
        R"(let $t := doc("t.xml")/a
           let $b := $t//b, $d := $t//d,
               $e := <e>{ $d, $b }</e>
           return ($b << $d, $e/b << $e/d))",
        o);
    // Sequence order is a 2-item boolean pair; even under mode unordered
    // the *values* are fixed (the multiset {true,false}).
    std::sort(items.begin(), items.end());
    EXPECT_EQ(items, (std::vector<std::string>{"false", "true"}));
  }
}

// Expression (4): under mode unordered the e elements may come back in
// any order, but the pos attribute must still consistently reflect each
// item's position in the binding sequence: the (pos -> letter) pairing
// set is invariant.
TEST_F(PaperExamplesTest, Expression4PositionalConsistency) {
  std::vector<std::string> items = Items(
      R"(for $x at $p in ("a","b","c")
         return <e pos="{ $p }">{ $x }</e>)",
      Unordered());
  ASSERT_EQ(items.size(), 3u);
  std::set<std::string> pairs(items.begin(), items.end());
  EXPECT_EQ(pairs, (std::set<std::string>{"<e pos=\"1\">a</e>",
                                          "<e pos=\"2\">b</e>",
                                          "<e pos=\"3\">c</e>"}));
}

// Positional consistency must also hold when the binding sequence itself
// comes out of an (unordered) location step and for nested iterations —
// positions restart at 1 per iteration.
TEST_F(PaperExamplesTest, PositionalVariableDensePerIteration) {
  std::vector<std::string> items = Items(
      R"(for $o in (1, 2)
         return for $x at $p in doc("t.xml")//c
                return $p)",
      Unordered());
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, (std::vector<std::string>{"1", "1", "2", "2"}));
}

// Expression (5): iter -> seq remains intact under mode unordered
// (Figure 3): ($x, $x*10) pairs stay adjacent and internally ordered —
// (2,20,1,10) is admissible, (1,20,2,10) is not.
TEST_F(PaperExamplesTest, Expression5PairsStayAdjacent) {
  std::vector<std::string> items =
      Items("for $x in (1,2) return ($x, $x * 10)", Unordered());
  ASSERT_EQ(items.size(), 4u);
  // Find each x; its 10x must follow immediately.
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i] == "1") {
      ASSERT_LT(i + 1, items.size());
      EXPECT_EQ(items[i + 1], "10");
    }
    if (items[i] == "2") {
      ASSERT_LT(i + 1, items.size());
      EXPECT_EQ(items[i + 1], "20");
    }
  }
}

// fn:unordered() additionally releases the pairing (Section 2.1): all
// 24 permutations are admissible — the multiset is all that's fixed.
TEST_F(PaperExamplesTest, FnUnorderedReleasesPairs) {
  std::vector<std::string> items = Items(
      "unordered(for $x in (1,2) return ($x, $x * 10))", Unordered());
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, (std::vector<std::string>{"1", "10", "2", "20"}));
}

// Expressions (6)/(7): nested iteration under mode unordered — the
// multiset of constructed elements is invariant.
TEST_F(PaperExamplesTest, Expression6NestedIteration) {
  std::vector<std::string> ordered_items = Items(
      R"(for $x in (1,2) for $y in (10,20)
         return <a>{ $x, $y }</a>)",
      QueryOptions{});
  EXPECT_EQ(ordered_items,
            (std::vector<std::string>{"<a>1 10</a>", "<a>1 20</a>",
                                      "<a>2 10</a>", "<a>2 20</a>"}));
  std::vector<std::string> unordered_items = Items(
      R"(for $x in (1,2) for $y in (10,20)
         return <a>{ $x, $y }</a>)",
      Unordered());
  std::sort(unordered_items.begin(), unordered_items.end());
  EXPECT_EQ(unordered_items, ordered_items);  // already sorted
}

// Section 2.2's let-unfolding counterexample: $c2 := ($t//c)[2] is fixed
// *before* unordered {} applies; unordered { $c2 } must still be that
// very node — unfolding the let into unordered { $t//c[2] } would
// illegitimately introduce nondeterminism.
TEST_F(PaperExamplesTest, LetUnfoldingCounterexample) {
  std::vector<std::string> items = Items(
      R"(let $t := doc("t.xml")/a
         let $c2 := ($t//c)[2]
         return unordered { $c2 } is ($t//c)[2])",
      QueryOptions{});
  EXPECT_EQ(items, (std::vector<std::string>{"true"}));
}

// Rules FN:COUNT / QUANT apply in either ordering mode: aggregates and
// quantifiers see no order, so their results are identical across all
// configurations.
TEST_F(PaperExamplesTest, ModeIndependentRules) {
  for (const char* q :
       {R"(count(doc("t.xml")//(c|d)))",
        R"(some $x in doc("t.xml")//c satisfies $x << doc("t.xml")//d)",
        R"(every $x in doc("t.xml")//c satisfies empty($x/*))"}) {
    QueryOptions baseline;
    baseline.enable_order_indifference = false;
    EXPECT_EQ(Items(q, baseline), Items(q, Unordered())) << q;
  }
}

// Q6-style: the count is order indifferent, so the *plans* differ wildly
// (Figure 6) but the value cannot.
TEST_F(PaperExamplesTest, AggregateValueInvariantAcrossPlans) {
  const char* q = R"(for $t in doc("t.xml")/a return count($t//(c|d)))";
  QueryOptions baseline;
  baseline.enable_order_indifference = false;
  Result<QueryResult> a = session_.Execute(q, baseline);
  Result<QueryResult> b = session_.Execute(q, Unordered());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->serialized, "3");
  EXPECT_EQ(b->serialized, "3");
  EXPECT_GT(a->plan_optimized.rownum_ops, b->plan_optimized.rownum_ops);
}

}  // namespace
}  // namespace exrquy
