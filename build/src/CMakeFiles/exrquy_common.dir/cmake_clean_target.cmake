file(REMOVE_RECURSE
  "libexrquy_common.a"
)
