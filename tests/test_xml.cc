// Unit tests for the XML parser and serializer: well-formed input,
// entities, CDATA, comments, whitespace policy, error reporting, and
// parse/serialize round trips.
#include <gtest/gtest.h>

#include <functional>

#include "xml/node_store.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace exrquy {
namespace {

class XmlTest : public ::testing::Test {
 protected:
  XmlTest() : store_(&strings_) {}

  NodeIdx MustParse(std::string_view xml, XmlParseOptions opts = {}) {
    Result<NodeIdx> r = ParseXml(&store_, xml, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : kInvalidNode;
  }

  std::string RoundTrip(std::string_view xml) {
    return SerializeNode(store_, MustParse(xml));
  }

  StrPool strings_;
  NodeStore store_;
};

TEST_F(XmlTest, SimpleElementRoundTrip) {
  EXPECT_EQ(RoundTrip("<a><b/><c>text</c></a>"), "<a><b/><c>text</c></a>");
}

TEST_F(XmlTest, AttributesRoundTrip) {
  EXPECT_EQ(RoundTrip(R"(<a id="1" name="x"><b k="v"/></a>)"),
            R"(<a id="1" name="x"><b k="v"/></a>)");
}

TEST_F(XmlTest, SingleQuotedAttributes) {
  EXPECT_EQ(RoundTrip("<a id='1'/>"), "<a id=\"1\"/>");
}

TEST_F(XmlTest, EntityDecoding) {
  NodeIdx doc = MustParse("<a x=\"&lt;&amp;&gt;\">&lt;tag&gt; &amp; &#65;</a>");
  NodeIdx a = doc + 1;
  EXPECT_EQ(store_.value_str(a + 1), "<&>");
  EXPECT_EQ(store_.StringValue(a), "<tag> & A");
}

TEST_F(XmlTest, EntityReEscapedOnSerialize) {
  EXPECT_EQ(RoundTrip("<a>&lt;x&gt; &amp; y</a>"),
            "<a>&lt;x&gt; &amp; y</a>");
}

TEST_F(XmlTest, CdataBecomesText) {
  NodeIdx doc = MustParse("<a><![CDATA[<raw> & stuff]]></a>");
  EXPECT_EQ(store_.StringValue(doc), "<raw> & stuff");
}

TEST_F(XmlTest, CommentsAndPisSkipped) {
  NodeIdx doc = MustParse(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><?pi data?><b/></a>");
  NodeIdx a = doc + 1;
  EXPECT_EQ(store_.size(a), 1u);  // only <b/>
}

TEST_F(XmlTest, WhitespaceOnlyTextStripped) {
  NodeIdx doc = MustParse("<a>\n  <b/>\n  <c/>\n</a>");
  NodeIdx a = doc + 1;
  EXPECT_EQ(store_.size(a), 2u);
}

TEST_F(XmlTest, WhitespacePreservedOnRequest) {
  XmlParseOptions opts;
  opts.strip_whitespace = false;
  NodeIdx doc = MustParse("<a> <b/> </a>", opts);
  NodeIdx a = doc + 1;
  EXPECT_EQ(store_.size(a), 3u);  // text, b, text
}

TEST_F(XmlTest, MixedContentPreserved) {
  EXPECT_EQ(RoundTrip("<p>one <em>two</em> three</p>"),
            "<p>one <em>two</em> three</p>");
}

TEST_F(XmlTest, DoctypeSkipped) {
  NodeIdx doc = MustParse("<!DOCTYPE a><a/>");
  EXPECT_EQ(store_.kind(doc + 1), NodeKind::kElement);
}

TEST_F(XmlTest, ErrorMismatchedTag) {
  Result<NodeIdx> r = ParseXml(&store_, "<a><b></a></b>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("mismatched"), std::string::npos);
}

TEST_F(XmlTest, ErrorUnterminated) {
  EXPECT_FALSE(ParseXml(&store_, "<a><b>").ok());
  EXPECT_FALSE(ParseXml(&store_, "<a attr=>").ok());
  EXPECT_FALSE(ParseXml(&store_, "<a attr=\"x>").ok());
}

TEST_F(XmlTest, ErrorTrailingContent) {
  EXPECT_FALSE(ParseXml(&store_, "<a/><b/>").ok());
}

TEST_F(XmlTest, DeepNesting) {
  std::string xml;
  for (int i = 0; i < 50; ++i) xml += "<n>";
  xml += "x";
  for (int i = 0; i < 50; ++i) xml += "</n>";
  NodeIdx doc = MustParse(xml);
  EXPECT_EQ(store_.size(doc), 51u);
  EXPECT_EQ(store_.level(doc + 50), 50);
}

TEST_F(XmlTest, SerializerEscapesAttributes) {
  std::string out;
  EscapeAttribute("a\"b<c>&d", &out);
  EXPECT_EQ(out, "a&quot;b&lt;c&gt;&amp;d");
}

TEST_F(XmlTest, SerializeBareAttributeAndText) {
  NodeIdx attr =
      store_.MakeAttribute(strings_.Intern("k"), strings_.Intern("v<"));
  EXPECT_EQ(SerializeNode(store_, attr), "k=\"v&lt;\"");
  NodeIdx text = store_.MakeText(strings_.Intern("a&b"));
  EXPECT_EQ(SerializeNode(store_, text), "a&amp;b");
}

TEST_F(XmlTest, RoundTripFixpointOnRandomDocuments) {
  // parse(serialize(parse(x))) == parse(x): serialization is a fixpoint
  // under re-parsing, for randomly generated documents with attributes,
  // mixed content and escapes.
  uint64_t state = 0xc0ffee;
  auto next = [&] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int seed = 0; seed < 20; ++seed) {
    state = 0x1000 + static_cast<uint64_t>(seed);
    std::function<std::string(int)> build = [&](int depth) {
      std::string name = "n" + std::to_string(next() % 4);
      std::string xml = "<" + name;
      if (next() % 2 != 0) {
        xml += " a=\"v&amp;" + std::to_string(next() % 9) + "\"";
      }
      xml += ">";
      size_t children = depth > 0 ? next() % 4 : 0;
      for (size_t i = 0; i < children; ++i) {
        if (next() % 3 == 0) {
          xml += "t&lt;" + std::to_string(next() % 100) + " ";
        } else {
          xml += build(depth - 1);
        }
      }
      xml += "</" + name + ">";
      return xml;
    };
    std::string xml = build(4);
    Result<NodeIdx> first = ParseXml(&store_, xml);
    ASSERT_TRUE(first.ok()) << xml;
    std::string once = SerializeNode(store_, *first);
    Result<NodeIdx> second = ParseXml(&store_, once);
    ASSERT_TRUE(second.ok()) << once;
    EXPECT_EQ(SerializeNode(store_, *second), once) << xml;
  }
}

TEST_F(XmlTest, StoreInvariantsOnParsedDocuments) {
  // size/level/parent consistency over a representative document.
  NodeIdx doc = MustParse(
      "<r a=\"1\"><x><y k=\"2\">t</y></x><x/>mix<z><z><z/></z></z></r>");
  NodeIdx end = doc + store_.size(doc);
  for (NodeIdx n = doc; n <= end; ++n) {
    // Subtree ranges nest within the parent's range.
    NodeIdx p = store_.parent(n);
    if (p != kInvalidNode) {
      EXPECT_GT(n, p);
      EXPECT_LE(n + store_.size(n), p + store_.size(p));
      EXPECT_EQ(store_.level(n), store_.level(p) + 1);
    }
    // Children partition the subtree range (minus attributes).
    if (store_.kind(n) == NodeKind::kElement) {
      NodeIdx c = n + 1;
      NodeIdx subtree_end = n + store_.size(n);
      while (c <= subtree_end) {
        EXPECT_EQ(store_.parent(c), n);
        c += store_.size(c) + 1;
      }
      EXPECT_EQ(c, subtree_end + 1);
    }
  }
}

TEST_F(XmlTest, IndentedOutputContainsNewlines) {
  NodeIdx doc = MustParse("<a><b><c/></b></a>");
  XmlSerializeOptions opts;
  opts.indent = true;
  std::string out = SerializeNode(store_, doc, opts);
  EXPECT_NE(out.find('\n'), std::string::npos);
  EXPECT_NE(out.find("  <b>"), std::string::npos);
}

}  // namespace
}  // namespace exrquy
