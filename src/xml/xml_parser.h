// Minimal non-validating XML parser sufficient for XMark-style documents:
// elements, attributes, character data (with entity references), comments,
// processing instructions and the XML declaration (both skipped), CDATA.
#ifndef EXRQUY_XML_XML_PARSER_H_
#define EXRQUY_XML_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/node_store.h"

namespace exrquy {

struct XmlParseOptions {
  // Drop text nodes that consist only of whitespace (boundary whitespace
  // between elements). XMark data has no meaningful whitespace-only text.
  bool strip_whitespace = true;

  // Maximum element nesting depth. The parser recurses per element, so
  // without a limit an adversarial <a><a><a>… document overflows the
  // stack instead of returning a Status; the limit also keeps node
  // levels far inside NodeStore's uint16_t level encoding. 500 is an
  // order of magnitude above any real document (XMark nests < 12).
  size_t max_depth = 500;
};

// Parses `text` into a new fragment of `store` rooted at a document node.
// Returns the document node's preorder rank. The fragment is registered
// but not name-indexed; callers decide whether to IndexFragment it.
Result<NodeIdx> ParseXml(NodeStore* store, std::string_view text,
                         const XmlParseOptions& options = {});

}  // namespace exrquy

#endif  // EXRQUY_XML_XML_PARSER_H_
