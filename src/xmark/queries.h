// The twenty XMark benchmark queries (Schmidt et al., VLDB 2002),
// syntactically adapted to the supported XQuery subset; the paper's
// Figure 12 evaluates exactly this query set. Adaptations are noted
// inline in queries.cc.
#ifndef EXRQUY_XMARK_QUERIES_H_
#define EXRQUY_XMARK_QUERIES_H_

#include <string>
#include <vector>

namespace exrquy {

struct XMarkQuery {
  std::string name;  // "Q1" .. "Q20"
  std::string text;
};

const std::vector<XMarkQuery>& XMarkQueries();

// Returns the text of the query with the given name ("Q11"), or an empty
// string when unknown.
const std::string& XMarkQueryText(const std::string& name);

}  // namespace exrquy

#endif  // EXRQUY_XMARK_QUERIES_H_
