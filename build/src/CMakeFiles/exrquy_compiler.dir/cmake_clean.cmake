file(REMOVE_RECURSE
  "CMakeFiles/exrquy_compiler.dir/compiler/compile.cc.o"
  "CMakeFiles/exrquy_compiler.dir/compiler/compile.cc.o.d"
  "libexrquy_compiler.a"
  "libexrquy_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exrquy_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
