# Empty dependencies file for xq.
# This may be replaced when dependencies are built.
