file(REMOVE_RECURSE
  "libexrquy_compiler.a"
)
