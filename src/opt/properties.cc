#include "opt/properties.h"

#include "common/check.h"

namespace exrquy {

const ColProps& PropertyTracker::Get(OpId id) {
  auto it = memo_.find(id);
  if (it != memo_.end()) return it->second;
  ColProps props = Compute(id);
  return memo_.emplace(id, std::move(props)).first->second;
}

ColProps PropertyTracker::Compute(OpId id) {
  const Op& op = *&dag_->op(id);
  ColProps out;
  auto child = [&](size_t i) -> const ColProps& {
    return Get(op.children[i]);
  };
  auto inherit = [&](const ColProps& p) {
    for (ColId c : p.constant) {
      if (op.HasCol(c)) out.constant.insert(c);
    }
    for (ColId c : p.arbitrary) {
      if (op.HasCol(c)) out.arbitrary.insert(c);
    }
  };

  switch (op.kind) {
    case OpKind::kLit: {
      for (size_t i = 0; i < op.lit.cols.size(); ++i) {
        bool constant = true;
        for (size_t r = 1; r < op.lit.rows.size(); ++r) {
          if (!(op.lit.rows[r][i] == op.lit.rows[0][i])) {
            constant = false;
            break;
          }
        }
        if (constant) out.constant.insert(op.lit.cols[i]);
      }
      break;
    }
    case OpKind::kProject: {
      const ColProps& p = child(0);
      for (const auto& [n, o] : op.proj) {
        if (p.constant.count(o) != 0) out.constant.insert(n);
        if (p.arbitrary.count(o) != 0) out.arbitrary.insert(n);
      }
      break;
    }
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
    case OpKind::kCardCheck:
      inherit(child(0));
      break;
    case OpKind::kEquiJoin:
    case OpKind::kCross:
      inherit(child(0));
      inherit(child(1));
      break;
    case OpKind::kUnion: {
      // A column stays constant only if both branches are constant with
      // the same value — value tracking is out of scope, so constancy is
      // dropped; arbitrariness survives if both branches are arbitrary.
      const ColProps& a = child(0);
      const ColProps& b = child(1);
      for (ColId c : a.arbitrary) {
        if (b.arbitrary.count(c) != 0) out.arbitrary.insert(c);
      }
      break;
    }
    case OpKind::kRowNum:
      inherit(child(0));
      // The produced rank is meaningful (unless its criteria were
      // arbitrary — but then the rewriter turns the op into # anyway).
      break;
    case OpKind::kRowId:
      inherit(child(0));
      out.arbitrary.insert(op.col);
      break;
    case OpKind::kFun: {
      inherit(child(0));
      out.constant.erase(op.col);
      out.arbitrary.erase(op.col);
      bool all_const = true;
      for (ColId a : op.args) {
        if (child(0).constant.count(a) == 0) all_const = false;
      }
      if (all_const) out.constant.insert(op.col);
      break;
    }
    case OpKind::kAggr: {
      const ColProps& p = child(0);
      if (op.part != kNoCol) {
        if (p.constant.count(op.part) != 0) out.constant.insert(op.part);
        if (p.arbitrary.count(op.part) != 0) out.arbitrary.insert(op.part);
      }
      break;
    }
    case OpKind::kRange:
    case OpKind::kStep:
    case OpKind::kElem:
    case OpKind::kAttr:
    case OpKind::kTextNode: {
      // The iter column descends from the context/loop input (child 0 for
      // steps and ranges, child 1 — the loop — for constructors).
      bool from_first =
          op.kind == OpKind::kStep || op.kind == OpKind::kRange;
      const ColProps& p = child(from_first ? 0 : 1);
      if (p.constant.count(col::iter()) != 0) {
        out.constant.insert(col::iter());
      }
      if (p.arbitrary.count(col::iter()) != 0) {
        out.arbitrary.insert(col::iter());
      }
      break;
    }
    case OpKind::kDoc:
      out.constant.insert(col::item());
      break;
  }
  return out;
}

}  // namespace exrquy
