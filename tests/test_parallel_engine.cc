// Determinism contract of the parallel execution engine: for every
// query, every thread count and every chunk size, the result — the
// serialized string, the item list, and even the error on failing
// queries — is byte-identical to num_threads = 1, which is the exact
// serial evaluation order. The suite drives the contract three ways:
//
//   * all twenty XMark queries, serial vs 4 threads with a tiny chunk
//     size (so the chunked kernels actually split);
//   * a fuzz corpus in the style of test_fuzz_equivalence, where the
//     random plans exercise operator mixes the XMark set does not;
//   * queries that fail mid-flight, where the scheduler must cancel
//     in-flight work, drain the DAG without hanging, and still report
//     the same first error the serial order would;
//
// plus the memory half of the engine: refcounted release of
// intermediate tables must strictly lower the peak live footprint on
// XMark Q11 (the join-heavy profile query of Table 2).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/session.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace exrquy {
namespace {

QueryOptions Serial() {
  QueryOptions o;
  o.num_threads = 1;
  return o;
}

QueryOptions Parallel(size_t chunk_rows = 7) {
  QueryOptions o;
  o.num_threads = 4;
  o.chunk_rows = chunk_rows;  // tiny: forces the chunked kernel paths
  return o;
}

class ParallelEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    session_ = new Session();
    XMarkOptions options;
    options.scale = 0.004;
    ASSERT_TRUE(
        session_->LoadDocument("auction.xml", GenerateXMark(options)).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static Session* session_;
};

Session* ParallelEngineTest::session_ = nullptr;

TEST_F(ParallelEngineTest, XMarkByteIdenticalAtFourThreads) {
  for (const XMarkQuery& q : XMarkQueries()) {
    Result<QueryResult> serial = session_->Execute(q.text, Serial());
    Result<QueryResult> parallel = session_->Execute(q.text, Parallel());
    ASSERT_TRUE(serial.ok()) << q.name << ": " << serial.status().ToString();
    ASSERT_TRUE(parallel.ok())
        << q.name << ": " << parallel.status().ToString();
    EXPECT_EQ(serial->serialized, parallel->serialized) << q.name;
    EXPECT_EQ(serial->items, parallel->items) << q.name;
  }
}

TEST_F(ParallelEngineTest, XMarkByteIdenticalUnorderedMode) {
  // Order indifference rewrites change the plans; the engine contract
  // holds for whatever plan it is handed.
  for (const XMarkQuery& q : XMarkQueries()) {
    QueryOptions serial_opts = Serial();
    QueryOptions parallel_opts = Parallel();
    serial_opts.default_ordering = OrderingMode::kUnordered;
    parallel_opts.default_ordering = OrderingMode::kUnordered;
    Result<QueryResult> serial = session_->Execute(q.text, serial_opts);
    Result<QueryResult> parallel = session_->Execute(q.text, parallel_opts);
    ASSERT_TRUE(serial.ok()) << q.name << ": " << serial.status().ToString();
    ASSERT_TRUE(parallel.ok())
        << q.name << ": " << parallel.status().ToString();
    EXPECT_EQ(serial->serialized, parallel->serialized) << q.name;
    EXPECT_EQ(serial->items, parallel->items) << q.name;
  }
}

TEST_F(ParallelEngineTest, ChunkSizeNeverObservable) {
  // Chunk boundaries are a pure function of input size; none of them
  // may leak into the result.
  const std::string& q10 = XMarkQueryText("Q10");
  Result<QueryResult> reference = session_->Execute(q10, Serial());
  ASSERT_TRUE(reference.ok());
  for (size_t chunk_rows : {size_t{1}, size_t{3}, size_t{64}, size_t{65536}}) {
    Result<QueryResult> r = session_->Execute(q10, Parallel(chunk_rows));
    ASSERT_TRUE(r.ok()) << "chunk_rows=" << chunk_rows;
    EXPECT_EQ(reference->serialized, r->serialized)
        << "chunk_rows=" << chunk_rows;
    EXPECT_EQ(reference->items, r->items) << "chunk_rows=" << chunk_rows;
  }
}

// ---------------------------------------------------------------------
// Fuzz corpus (generator in the style of test_fuzz_equivalence, biased
// toward joins, unions and constructors — the chunked kernels).

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9e3779b97f4a7c15ull + 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  int Below(int n) { return static_cast<int>(Next() % n); }

 private:
  uint64_t state_;
};

std::string RandomDoc(Rng* rng) {
  std::string xml = "<top>";
  int groups = 3 + rng->Below(4);
  for (int g = 0; g < groups; ++g) {
    xml += "<g k=\"" + std::to_string(rng->Below(6)) + "\">";
    int leaves = rng->Below(5);
    for (int l = 0; l < leaves; ++l) {
      int v = rng->Below(30);
      xml += (rng->Below(2) != 0)
                 ? "<n>" + std::to_string(v) + "</n>"
                 : "<m v=\"" + std::to_string(v) + "\"/>";
    }
    xml += "</g>";
  }
  xml += "</top>";
  return xml;
}

std::string NodeExpr(Rng* rng, int depth) {
  if (depth <= 0) return R"(doc("f.xml")/top/g)";
  switch (rng->Below(5)) {
    case 0:
      return NodeExpr(rng, depth - 1) + "/n";
    case 1:
      return NodeExpr(rng, depth - 1) + "//m";
    case 2:
      return "(" + NodeExpr(rng, depth - 1) + " | " +
             NodeExpr(rng, depth - 1) + ")";
    case 3:
      return NodeExpr(rng, depth - 1) + "[" +
             std::to_string(1 + rng->Below(3)) + "]";
    default:
      return R"(doc("f.xml")//g)";
  }
}

std::string RandomQuery(Rng* rng) {
  switch (rng->Below(6)) {
    case 0:
      // Value join: EquiJoin build + chunked probe.
      return "for $a in doc(\"f.xml\")//g, $b in doc(\"f.xml\")//g "
             "where $a/@k = $b/@k return count($b/n)";
    case 1:
      return "for $x in " + NodeExpr(rng, 2) +
             " where count($x/n) > " + std::to_string(rng->Below(3)) +
             " return <r>{ $x/@k }</r>";
    case 2:
      return "for $x in " + NodeExpr(rng, 1) +
             " order by number($x/@k), count($x/n) return name($x)";
    case 3:
      return "sum(for $x in " + NodeExpr(rng, 2) + " return count($x))";
    case 4:
      return "for $x in " + NodeExpr(rng, 2) +
             " return ($x/@k, count($x//m))";
    default:
      return "count(" + NodeExpr(rng, 2) + ")";
  }
}

TEST(ParallelEngineFuzzTest, CorpusByteIdentical) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 4242);
    Session session;
    ASSERT_TRUE(session.LoadDocument("f.xml", RandomDoc(&rng)).ok());
    int executed = 0;
    for (int i = 0; i < 25; ++i) {
      std::string query = RandomQuery(&rng);
      Result<QueryResult> serial = session.Execute(query, Serial());
      Result<QueryResult> parallel = session.Execute(query, Parallel(3));
      ASSERT_EQ(serial.ok(), parallel.ok())
          << query << "\nserial:   " << serial.status().ToString()
          << "\nparallel: " << parallel.status().ToString();
      if (!serial.ok()) {
        // Even failures must be deterministic: the scheduler reports
        // the first error of the serial evaluation order.
        EXPECT_EQ(serial.status().ToString(), parallel.status().ToString())
            << query;
        continue;
      }
      ++executed;
      EXPECT_EQ(serial->serialized, parallel->serialized) << query;
      EXPECT_EQ(serial->items, parallel->items) << query;
    }
    EXPECT_GT(executed, 15) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// Cancellation: a query that fails at runtime, executed with all the
// parallel machinery engaged. The scheduler must cancel outstanding
// work, drain the DAG (the test completing at all proves no hang), leak
// nothing (the ASan job covers that), and report the serial error.

TEST_F(ParallelEngineTest, RuntimeErrorCancelsCleanly) {
  // Arithmetic requires a singleton; //person is plural, so the plan's
  // cardinality check fails mid-flight while sibling subtrees are still
  // being evaluated.
  const std::string query = R"(1 + doc("auction.xml")//person)";
  Result<QueryResult> serial = session_->Execute(query, Serial());
  ASSERT_FALSE(serial.ok());
  for (int i = 0; i < 20; ++i) {
    Result<QueryResult> parallel = session_->Execute(query, Parallel(2));
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(serial.status().ToString(), parallel.status().ToString());
  }
}

TEST_F(ParallelEngineTest, ErrorsInFuzzNeverHang) {
  // Malformed-at-runtime variants over the auction document.
  const std::vector<std::string> failing = {
      R"(sum(doc("auction.xml")//person/name))",  // non-numeric text
      R"(1 + doc("auction.xml")//item)",
      R"((doc("auction.xml")//person)[1] * 2)",
  };
  for (const std::string& query : failing) {
    Result<QueryResult> serial = session_->Execute(query, Serial());
    Result<QueryResult> parallel = session_->Execute(query, Parallel(2));
    ASSERT_EQ(serial.ok(), parallel.ok()) << query;
    if (!serial.ok()) {
      EXPECT_EQ(serial.status().ToString(), parallel.status().ToString())
          << query;
    } else {
      EXPECT_EQ(serial->items, parallel->items) << query;
    }
  }
}

// ---------------------------------------------------------------------
// Memory: refcounted intermediate release (opt/analyses.h ConsumerCounts).

TEST_F(ParallelEngineTest, Q11PeakMemoryStrictlyLowerWithRelease) {
  const std::string& q11 = XMarkQueryText("Q11");
  QueryOptions keep = Serial();
  keep.profile = true;
  keep.release_intermediates = false;
  QueryOptions release = Serial();
  release.profile = true;
  release.release_intermediates = true;

  Result<QueryResult> kept = session_->Execute(q11, keep);
  Result<QueryResult> released = session_->Execute(q11, release);
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  ASSERT_TRUE(released.ok()) << released.status().ToString();

  // Same answer either way...
  EXPECT_EQ(kept->serialized, released->serialized);
  // ...but the live frontier is strictly smaller than the whole plan.
  EXPECT_GT(released->profile.released_tables(), 0u);
  EXPECT_LT(released->profile.peak_live_bytes(),
            kept->profile.peak_live_bytes());
  // And release is on by default in the parallel path too.
  QueryOptions par = Parallel();
  par.profile = true;
  Result<QueryResult> parallel = session_->Execute(q11, par);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(kept->serialized, parallel->serialized);
  EXPECT_LT(parallel->profile.peak_live_bytes(),
            kept->profile.peak_live_bytes());
}

TEST_F(ParallelEngineTest, ProfileRecordsSchedulerFacts) {
  QueryOptions par = Parallel();
  par.profile = true;
  Result<QueryResult> r = session_->Execute(XMarkQueryText("Q8"), par);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->profile.threads(), 4u);
  EXPECT_FALSE(r->profile.ops().empty());
  size_t chunked = 0;
  for (const Profile::OpMetrics& m : r->profile.ops()) {
    if (m.chunks > 1) ++chunked;
  }
  EXPECT_GT(chunked, 0u) << "tiny chunk_rows must split at least one kernel";
  // The JSON dump serializes without blowing up and carries the facts.
  std::string json = r->profile.ToJson();
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"peak_live_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace exrquy
