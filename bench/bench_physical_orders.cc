// Section 6 pointer (Moerkotte & Neumann): "Physical plan optimization
// is orthogonal to the present work ... The techniques of [15] might
// infer that a particular sub-plan yields rows in <b, c> order. This
// renders subsequent % as cheap as #."
//
// The engine implements the runtime analogue: with physical sort
// detection on, % checks in O(n) whether its input already arrives in
// the requested order and skips the blocking sort. This bench shows
// (a) how much of the baseline's order-maintenance cost that recovers —
// step outputs arrive in document order, so the per-step % becomes a
// scan — and (b) that it is additive to, not a replacement for, the
// paper's logical rewrites, which also remove the dead data flow.
#include <cstdio>

#include "bench/bench_util.h"

namespace exrquy {
namespace {

void Run() {
  double scale = bench::EnvScale("EXRQUY_SCALE", 0.02);
  size_t bytes = 0;
  auto session = bench::MakeXMarkSession(scale, &bytes);
  std::printf(
      "Physical order detection vs logical order indifference "
      "(instance %zu KB)\n\n",
      bytes / 1024);

  QueryOptions base = bench::Baseline();
  QueryOptions base_phys = base;
  base_phys.physical_sort_detection = true;
  QueryOptions enabled = bench::Enabled();
  QueryOptions enabled_phys = enabled;
  enabled_phys.physical_sort_detection = true;

  std::printf("%-6s %12s %12s %12s %12s   %s\n", "query", "baseline",
              "base+phys", "enabled", "enabled+phys", "sorts skipped");
  for (const char* name : {"Q1", "Q2", "Q5", "Q6", "Q7", "Q11", "Q13",
                           "Q14", "Q19"}) {
    const std::string& q = XMarkQueryText(name);
    QueryResult skipped_probe;
    double b = bench::MedianExecMs(session.get(), q, base, 3);
    double bp = bench::MedianExecMs(session.get(), q, base_phys, 3,
                                    &skipped_probe);
    double e = bench::MedianExecMs(session.get(), q, enabled, 3);
    double ep = bench::MedianExecMs(session.get(), q, enabled_phys, 3);
    std::printf("%-6s %10.2fms %10.2fms %10.2fms %10.2fms   %zu\n", name, b,
                bp, e, ep, skipped_probe.sorts_skipped);
  }
  std::printf(
      "\nExpected: sort detection recovers the per-step %% cost (step\n"
      "outputs arrive in document order) but not the join-scrambled\n"
      "back-map sorts, and it cannot remove the dead data flow that the\n"
      "logical rewrites prune — the enabled configuration stays ahead.\n");
}

}  // namespace
}  // namespace exrquy

int main() {
  exrquy::Run();
  return 0;
}
