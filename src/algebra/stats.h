// Plan statistics: operator counts by kind, the % / # tally that the
// paper uses to characterize plans (Figures 6, 9, 10; "the initial plan
// DAG of 235 operators is cut down to 141 nodes").
#ifndef EXRQUY_ALGEBRA_STATS_H_
#define EXRQUY_ALGEBRA_STATS_H_

#include <map>
#include <string>

#include "algebra/algebra.h"

namespace exrquy {

struct PlanStats {
  size_t total_ops = 0;
  size_t rownum_ops = 0;        // % operators (blocking sorts)
  size_t rowid_ops = 0;         // # operators (free numbering)
  size_t positional_rowid_ops = 0;  // #^ subset: ids proven row positions
  size_t step_ops = 0;          // ⊙ operators
  size_t distinct_ops = 0;
  size_t theta_join_ops = 0;    // ThetaJoin operators
  size_t value_join_ops = 0;    // joins carrying the value-join mark
                                // (ThetaJoin + marked EquiJoin)
  std::map<std::string, size_t> by_kind;

  std::string ToString() const;
};

PlanStats CollectPlanStats(const Dag& dag, OpId root);

}  // namespace exrquy

#endif  // EXRQUY_ALGEBRA_STATS_H_
