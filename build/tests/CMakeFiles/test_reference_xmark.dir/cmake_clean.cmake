file(REMOVE_RECURSE
  "CMakeFiles/test_reference_xmark.dir/test_reference_xmark.cc.o"
  "CMakeFiles/test_reference_xmark.dir/test_reference_xmark.cc.o.d"
  "test_reference_xmark"
  "test_reference_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
